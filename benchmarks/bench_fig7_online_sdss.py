"""Figure 7 — Online performance of the high-spread SDSS query.

Paper (Section 6.2): the same trade-off as Figure 6 on SDSS: on SDSS-dec
(dispersed) larger aggressiveness is better online; on SDSS-clust a=2.0
creates much longer delays.  "a=1.0 might be considered a 'safe' value on
average."
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_sdss,
    get_table,
    online_series,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.workloads import sdss_query

ALPHAS = (0.0, 0.5, 1.0, 2.0)
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def _run_experiment() -> dict:
    fraction = bench_scale().sample_fraction
    dataset = get_sdss()
    query = sdss_query(dataset, "high")
    out: dict[tuple[str, float], dict] = {}
    for placement, axis_dim, label in (("axis", 1, "SDSS-dec"), ("cluster", 0, "SDSS-clust")):
        table = get_table(dataset, placement, axis_dim=axis_dim)
        for alpha in ALPHAS:
            db = fresh_database(table)
            engine = SWEngine(db, dataset.name, sample_fraction=fraction)
            run = engine.execute(query, SearchConfig(alpha=alpha)).run
            out[(label, alpha)] = {
                "series": online_series(run, FRACTIONS),
                "completion": run.completion_time_s,
                "results": run.num_results,
            }
    return out


def test_fig7_online_performance_high_spread_sdss(benchmark):
    out = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    for label in ("SDSS-dec", "SDSS-clust"):
        rows = []
        for alpha in ALPHAS:
            entry = out[(label, alpha)]
            rows.append(
                [f"a={alpha}"]
                + [format_seconds(t) for _, t in entry["series"]]
                + [format_seconds(entry["completion"])]
            )
        print_table(
            f"Figure 7: time (s) to reach a fraction of all results ({label})",
            ["Aggr."] + [f"{int(f * 100)}%" for f in FRACTIONS] + ["Completion"],
            rows,
        )

    counts = {entry["results"] for entry in out.values()}
    assert len(counts) == 1, f"result counts varied across configs: {counts}"
    # Dispersed ordering: prefetching pays off in completion time.
    assert out[("SDSS-dec", 2.0)]["completion"] < out[("SDSS-dec", 0.0)]["completion"] / 2
    # Clustered ordering is far better than dispersed without prefetch.
    assert out[("SDSS-clust", 0.0)]["completion"] < out[("SDSS-dec", 0.0)]["completion"] / 2
