"""Table 2 — Disk statistics under the four physical orderings.

Paper (Section 6.3), synthetic dataset, one query, no prefetch:

    Data set      Total(s)  Mean/Dev(ms)  Reads(blk)  Re-reads(blk)
    Synth-x       24,987    2.4 / 2.5     10,476,601  6,477,523
    Synth-ind      3,053    0.7 / 1.7      4,217,096    218,018
    Synth-clust      738    0.2 / 0.8      4,001,263      2,185
    Synth-H          747    0.2 / 0.8      4,000,592      1,514

Expected shapes: the axis ordering re-reads a large multiple of the file
and its per-block mean approaches the seek cost; index ordering is in
between; clustered and Hilbert orderings are nearly ideal and nearly
identical.
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_synthetic,
    get_table,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.workloads import synthetic_query

PLACEMENTS = (("axis", "Synth-x"), ("index", "Synth-ind"), ("cluster", "Synth-clust"), ("hilbert", "Synth-H"))


def _run_experiment() -> dict:
    fraction = bench_scale().sample_fraction
    dataset = get_synthetic("high")
    query = synthetic_query(dataset)
    stats: dict[str, dict] = {}
    for placement, label in PLACEMENTS:
        table = get_table(dataset, placement)
        db = fresh_database(table)
        engine = SWEngine(db, dataset.name, sample_fraction=fraction)
        report = engine.execute(query, SearchConfig(alpha=0.0))
        stats[label] = dict(report.disk_stats)
        stats[label]["file_blocks"] = table.num_blocks
    return stats


def test_table2_disk_statistics(benchmark):
    stats = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    rows = []
    for _, label in PLACEMENTS:
        s = stats[label]
        rows.append(
            [
                label,
                format_seconds(s["total_time_s"]),
                f"{s['mean_read_ms']:.2f}/{s['dev_read_ms']:.2f}",
                f"{int(s['blocks_read']):,}",
                f"{int(s['blocks_reread']):,}",
            ]
        )
    print_table(
        "Table 2: disk statistics (synthetic dataset, no prefetch)",
        ["Data set", "Total (s)", "Mean/Dev (ms)", "Reads (blk)", "Re-reads (blk)"],
        rows,
    )

    x, ind = stats["Synth-x"], stats["Synth-ind"]
    clust, hil = stats["Synth-clust"], stats["Synth-H"]
    # Re-read ordering: x > ind >> clust ~ H (the x:ind gap widens with
    # scale; at the paper's size it is ~30x, at bench scales >= 1.5x).
    assert x["blocks_reread"] > 1.5 * ind["blocks_reread"]
    assert ind["blocks_reread"] > 2 * max(clust["blocks_reread"], 1)
    # The axis ordering re-reads a large multiple of the file.
    assert x["blocks_read"] > 3 * x["file_blocks"]
    # Mean per-block time contrast between dispersed and clustered.
    assert x["mean_read_ms"] > 1.5 * clust["mean_read_ms"]
    # Total-time ordering follows.
    assert x["total_time_s"] > ind["total_time_s"] > clust["total_time_s"] * 0.9
    assert abs(clust["total_time_s"] - hil["total_time_s"]) < 0.7 * clust["total_time_s"]
