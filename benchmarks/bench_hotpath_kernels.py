"""Hot-path kernel benchmarks: SAT lookups, batch seeding, end-to-end.

Three layers, each asserting both *speed* and *exactness* of the
summed-area-table kernel path (``repro.core.kernels``) against the naive
per-window slice reductions it replaces:

* **micro** — ``SummedAreaTable.window_sum`` / ``placement_sums`` versus
  per-window ``ndarray`` slice sums over random boxes (values must match
  exactly: integer-valued float64 prefix sums are exact below 2^53);
* **seeding** — ``HeuristicSearch._seed_start_windows`` with kernels on
  versus off for a seed-heavy query on the paper's 100x100 synthetic
  grid, asserting a >= 5x speedup and identical queue contents;
* **end-to-end** — a time-budgeted (interactive) exploration over a fine
  200x200 query grid, asserting a >= 3x wall-clock speedup with
  byte-identical :class:`~repro.core.search.SearchRun` output, plus
  kernel-vs-naive run identity on every synthetic spread config.

Results are emitted machine-readably via ``repro.bench.emit_json`` and
folded into ``BENCH_hotpath.json`` at the repo root (one latest record
per section, committed so perf is diffable commit-over-commit).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.bench import emit_json, fresh_database, get_synthetic, get_table, print_table
from repro.core import SearchConfig, SWEngine
from repro.core.conditions import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
)
from repro.core.expressions import col
from repro.core.kernels import SummedAreaTable
from repro.core.query import SWQuery
from repro.obs import InvariantAuditor
from repro.workloads import synthetic_query
from repro.workloads.synthetic import SPREADS, synthetic_dataset


_BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"


def _record(section: str, payload: dict) -> None:
    """Fold one section's numbers into ``BENCH_hotpath.json`` at repo root.

    The file keeps the latest result per section so perf trajectories can
    be diffed commit-over-commit without scraping pytest output.  Floats
    are rounded: past ~4 significant digits the values are machine noise,
    and stable digits keep the committed file's diffs meaningful.
    """

    def _round(value):
        if isinstance(value, float):
            return round(value, 4)
        if isinstance(value, dict):
            return {k: _round(v) for k, v in value.items()}
        return value

    try:
        doc = json.loads(_BENCH_FILE.read_text())
    except (OSError, ValueError):
        doc = {}
    doc.setdefault("sections", {})[section] = _round(payload)
    doc["date"] = time.strftime("%Y-%m-%d")
    _BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _seed_heavy_query(dataset, steps=None) -> SWQuery:
    """A query whose shape conditions make seeding the dominant phase.

    ``len >= 3`` per dimension yields one start window per grid cell
    offset (~n placements on an n-cell grid), and the ``avg(value)``
    interval forces a content estimate for every one of them.
    """
    grid = dataset.grid
    avg_value = ContentObjective.of("avg", col("value"))
    conditions = [
        ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, 3),
        ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.GE, 3),
        ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, 16),
        ContentCondition(avg_value, ComparisonOp.GT, 20.0),
        ContentCondition(avg_value, ComparisonOp.LT, 30.0),
    ]
    return SWQuery.build(
        dimensions=("x", "y"),
        area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
        steps=steps if steps is not None else grid.steps,
        conditions=conditions,
    )


def _run_fingerprint(run) -> tuple:
    """Everything observable about a search run, for byte-identity checks."""
    return (
        [(r.window, r.bounds, tuple(sorted(r.objective_values.items())), r.time) for r in run.results],
        run.completion_time_s,
        run.stats,
    )


# -- micro: SAT versus slice reductions --------------------------------------


def _run_micro() -> dict:
    rng = np.random.default_rng(7)
    grid = rng.integers(0, 200, size=(400, 400)).astype(np.int64)
    sat = SummedAreaTable(grid)

    boxes = []
    for _ in range(2000):
        lo = rng.integers(0, 396, size=2)
        hi = np.minimum(lo + 1 + rng.integers(0, 40, size=2), 400)
        boxes.append((tuple(int(v) for v in lo), tuple(int(v) for v in hi)))

    t0 = time.perf_counter()
    naive = [float(grid[lo[0] : hi[0], lo[1] : hi[1]].sum()) for lo, hi in boxes]
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = [sat.box_sum(lo, hi) for lo, hi in boxes]
    sat_s = time.perf_counter() - t0
    assert fast == naive, "SAT box sums must match slice sums exactly"

    lengths = (5, 5)
    t0 = time.perf_counter()
    naive_grid = np.array(
        [
            [float(grid[i : i + 5, j : j + 5].sum()) for j in range(396)]
            for i in range(396)
        ]
    )
    naive_place_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast_grid = sat.placement_sums(lengths)
    place_s = time.perf_counter() - t0
    assert np.array_equal(fast_grid, naive_grid), "placement sums must match slice sums"

    return {
        "box_naive_s": naive_s,
        "box_sat_s": sat_s,
        "placement_naive_s": naive_place_s,
        "placement_sat_s": place_s,
        "placement_speedup": naive_place_s / place_s,
    }


def test_sat_micro_kernels(benchmark):
    out = benchmark.pedantic(_run_micro, rounds=1, iterations=1)
    print_table(
        "Summed-area-table kernels vs slice reductions (2000 boxes / 156k placements)",
        ["Kernel", "naive (s)", "SAT (s)", "speedup"],
        [
            ["box_sum", f"{out['box_naive_s']:.4f}", f"{out['box_sat_s']:.4f}",
             f"{out['box_naive_s'] / out['box_sat_s']:.1f}x"],
            ["placement_sums", f"{out['placement_naive_s']:.4f}", f"{out['placement_sat_s']:.4f}",
             f"{out['placement_speedup']:.1f}x"],
        ],
    )
    _record("micro", out)
    emit_json("hotpath_micro", out)
    # Batch placement sums replace ~n^2 slice reductions with 2^d shifted
    # array subtractions; anything less than an order of magnitude here
    # means the kernel layer regressed badly.
    assert out["placement_speedup"] > 10.0


# -- seeding: batch placement evaluation -------------------------------------


def _run_seeding() -> dict:
    dataset = synthetic_dataset("high", scale=1.0)
    query = _seed_heavy_query(dataset)
    table = get_table(dataset, "axis", axis_dim=0)

    timings: dict[bool, float] = {}
    drained: dict[bool, list] = {}
    for use_kernels in (False, True):
        engine = SWEngine(
            fresh_database(table, metrics=False),
            dataset.name,
            sample_fraction=0.05,
            use_kernels=use_kernels,
        )
        engine.sample_for(query)  # build the (offline) sample outside the timing
        best = float("inf")
        for _ in range(3):
            search = engine.prepare(query, SearchConfig())
            t0 = time.perf_counter()
            search._seed_start_windows()
            best = min(best, time.perf_counter() - t0)
        timings[use_kernels] = best
        drained[use_kernels] = list(search.queue.drain())

    assert drained[True] == drained[False], "kernel seeding must fill an identical queue"
    return {
        "placements": len(drained[True]),
        "naive_s": timings[False],
        "kernel_s": timings[True],
        "speedup": timings[False] / timings[True],
    }


def test_seeding_speedup(benchmark):
    out = benchmark.pedantic(_run_seeding, rounds=1, iterations=1)
    print_table(
        "Batch seeding, 100x100 grid (seed-heavy query)",
        ["placements", "naive (s)", "kernel (s)", "speedup"],
        [[out["placements"], f"{out['naive_s']:.4f}", f"{out['kernel_s']:.4f}",
          f"{out['speedup']:.1f}x"]],
    )
    _record("seeding", out)
    emit_json("hotpath_seeding", out)
    assert out["speedup"] >= 5.0, f"seeding speedup {out['speedup']:.1f}x below 5x floor"


# -- end-to-end: interactive (time-budgeted) exploration ---------------------


def _run_end_to_end() -> dict:
    dataset = synthetic_dataset("high", scale=0.5)
    extent = dataset.grid.area[0].hi - dataset.grid.area[0].lo
    query = _seed_heavy_query(dataset, steps=(extent / 200, extent / 200))
    table = get_table(dataset, "axis", axis_dim=0)
    config = SearchConfig(time_limit_s=0.3)

    walls: dict[bool, float] = {}
    runs: dict[bool, tuple] = {}
    for use_kernels in (False, True):
        engine = SWEngine(
            fresh_database(table, metrics=False),
            dataset.name,
            sample_fraction=0.05,
            use_kernels=use_kernels,
        )
        engine.sample_for(query)  # sample construction is offline in the protocol
        t0 = time.perf_counter()
        report = engine.execute(query, config)
        walls[use_kernels] = time.perf_counter() - t0
        runs[use_kernels] = _run_fingerprint(report.run)

    assert runs[True] == runs[False], "kernel run must be byte-identical to naive"
    return {
        "results": len(runs[True][0]),
        "naive_wall_s": walls[False],
        "kernel_wall_s": walls[True],
        "speedup": walls[False] / walls[True],
    }


def test_end_to_end_speedup(benchmark):
    out = benchmark.pedantic(_run_end_to_end, rounds=1, iterations=1)
    print_table(
        "Interactive exploration, 200x200 query grid, time_limit_s=0.3",
        ["results", "naive wall (s)", "kernel wall (s)", "speedup"],
        [[out["results"], f"{out['naive_wall_s']:.3f}", f"{out['kernel_wall_s']:.3f}",
          f"{out['speedup']:.2f}x"]],
    )
    _record("end_to_end", out)
    emit_json("hotpath_end_to_end", out)
    assert out["speedup"] >= 3.0, f"end-to-end speedup {out['speedup']:.2f}x below 3x floor"


# -- observability overhead: registry attached vs detached -------------------


def _run_obs_overhead() -> dict:
    dataset = synthetic_dataset("high", scale=0.5)
    extent = dataset.grid.area[0].hi - dataset.grid.area[0].lo
    query = _seed_heavy_query(dataset, steps=(extent / 200, extent / 200))
    table = get_table(dataset, "axis", axis_dim=0)
    config = SearchConfig(time_limit_s=0.3)

    # Scheduler noise on shared machines dwarfs the effect being measured,
    # so time CPU seconds (process_time), run the two modes back-to-back
    # in alternating order each round, and take the median of the
    # per-round paired ratios — pairing cancels load drift, and the
    # median is robust where min-of-N reads biased (even negative).
    cpu: dict[bool, list[float]] = {False: [], True: []}
    runs: dict[bool, tuple] = {}
    snapshot = None
    for i in range(8):
        for attached in (False, True) if i % 2 == 0 else (True, False):
            database = fresh_database(table, metrics=attached)
            engine = SWEngine(database, dataset.name, sample_fraction=0.05)
            engine.sample_for(query)  # offline; also outside the overhead measurement
            t0 = time.process_time()
            report = engine.execute(query, config)
            cpu[attached].append(time.process_time() - t0)
            runs[attached] = _run_fingerprint(report.run)
            if attached:
                snapshot = database.metrics.snapshot()

    assert runs[True] == runs[False], "metrics must never alter search behavior"
    audit = InvariantAuditor(snapshot).report()
    assert audit["ok"], f"invariant audit failed: {audit['violations']}"
    return {
        "detached_cpu_s": statistics.median(cpu[False]),
        "attached_cpu_s": statistics.median(cpu[True]),
        "overhead_fraction": statistics.median(
            on / off - 1.0 for off, on in zip(cpu[False], cpu[True])
        ),
        "audit_checked": audit["checked"],
        "counters_recorded": len(snapshot["counters"]),
    }


def test_observability_overhead(benchmark):
    out = benchmark.pedantic(_run_obs_overhead, rounds=1, iterations=1)
    print_table(
        "Observability overhead, 200x200 query grid, time_limit_s=0.3 (median of 8, CPU s)",
        ["detached CPU (s)", "attached CPU (s)", "overhead", "identities checked"],
        [[f"{out['detached_cpu_s']:.3f}", f"{out['attached_cpu_s']:.3f}",
          f"{out['overhead_fraction'] * 100:.1f}%", out["audit_checked"]]],
    )
    _record("obs_overhead", out)
    emit_json("hotpath_obs_overhead", out)
    # Acceptance: a full registry (every hot-path counter, spans, histograms)
    # must cost < 10% end-to-end; the detached path pays only `is not None`
    # branch checks and is covered by the kernel timing floors above.
    assert out["overhead_fraction"] < 0.10, (
        f"metrics overhead {out['overhead_fraction'] * 100:.1f}% above 10% ceiling"
    )


# -- integrity overhead: checksummed reads on vs off -------------------------


def _run_checksum_overhead() -> dict:
    from repro.storage.integrity import StorageFaultPlan

    dataset = synthetic_dataset("high", scale=0.5)
    extent = dataset.grid.area[0].hi - dataset.grid.area[0].lo
    query = _seed_heavy_query(dataset, steps=(extent / 200, extent / 200))
    table = get_table(dataset, "axis", axis_dim=0)
    config = SearchConfig(time_limit_s=1.0)

    # CPU seconds, interleaved modes in alternating order, median of
    # eight — scheduler noise exceeds the 5% effect being bounded, and
    # min-of-N turns that noise into a biased (sometimes negative)
    # overhead; a fixed plain-then-checksummed order hands the second
    # mode warm caches, so the order flips every round.  A zero-fault
    # plan still pays the full checksum path (crc32 per block read plus
    # the injector's bookkeeping).
    cpu: dict[bool, list[float]] = {False: [], True: []}
    runs: dict[bool, tuple] = {}
    for i in range(8):
        for checksummed in (False, True) if i % 2 == 0 else (True, False):
            database = fresh_database(table, metrics=False)
            if checksummed:
                database.attach_integrity(StorageFaultPlan(seed=0))
            engine = SWEngine(database, dataset.name, sample_fraction=0.05)
            engine.sample_for(query)  # offline; outside the measurement
            t0 = time.process_time()
            report = engine.execute(query, config)
            cpu[checksummed].append(time.process_time() - t0)
            runs[checksummed] = _run_fingerprint(report.run)
            assert not report.degraded, "zero-fault plan must never degrade"

    assert runs[True] == runs[False], "a clean checksummed run must be byte-identical"
    # Median of per-round paired ratios: each round's two modes run
    # back-to-back under the same machine load, so pairing cancels the
    # slow drift that a ratio of independent medians is exposed to.
    plain = statistics.median(cpu[False])
    checksummed_s = statistics.median(cpu[True])
    overhead = statistics.median(
        chk / base - 1.0 for base, chk in zip(cpu[False], cpu[True])
    )
    return {
        "plain_cpu_s": plain,
        "checksummed_cpu_s": checksummed_s,
        "overhead_fraction": overhead,
    }


def test_checksum_overhead(benchmark):
    out = benchmark.pedantic(_run_checksum_overhead, rounds=1, iterations=1)
    print_table(
        "Checksummed-read overhead, 200x200 query grid, time_limit_s=1.0 (median of 8, CPU s)",
        ["plain CPU (s)", "checksummed CPU (s)", "overhead"],
        [[f"{out['plain_cpu_s']:.3f}", f"{out['checksummed_cpu_s']:.3f}",
          f"{out['overhead_fraction'] * 100:.1f}%"]],
    )
    _record("checksum_overhead", out)
    emit_json("storage_checksum_overhead", out)
    # Acceptance: crc verification on every block read must cost < 5%
    # end-to-end; the detached path pays only an `integrity is None` check.
    assert out["overhead_fraction"] < 0.05, (
        f"checksum overhead {out['overhead_fraction'] * 100:.1f}% above 5% ceiling"
    )


# -- parity: every existing synthetic config ---------------------------------


def _run_parity() -> dict:
    out = {}
    for spread in SPREADS:
        dataset = get_synthetic(spread)
        query = synthetic_query(dataset)
        table = get_table(dataset, "axis", axis_dim=0)
        fingerprints = {}
        for use_kernels in (False, True):
            engine = SWEngine(
                fresh_database(table), dataset.name, sample_fraction=0.1,
                use_kernels=use_kernels,
            )
            report = engine.execute(query, SearchConfig())
            fingerprints[use_kernels] = _run_fingerprint(report.run)
        assert fingerprints[True] == fingerprints[False], f"kernel run diverged on {spread}"
        out[spread] = len(fingerprints[True][0])
    return out


def test_kernel_parity_on_spread_configs(benchmark):
    out = benchmark.pedantic(_run_parity, rounds=1, iterations=1)
    print_table(
        "Kernel-vs-naive byte identity across synthetic spreads",
        ["spread", "results", "identical"],
        [[spread, n, "yes"] for spread, n in out.items()],
    )
    _record("parity", {"results_per_spread": out, "identical": True})
    emit_json("hotpath_parity", {"results_per_spread": out, "identical": True})
