"""Ablations of the design decisions called out in DESIGN.md Section 5.

Not in the paper's evaluation, but each isolates one design choice the
paper argues for:

* **lazy utility updates** (Section 4.1) vs trusting stale insertion-time
  utilities;
* **stratified** per-cell sampling (Section 6) vs plain uniform sampling;
* **anti-monotone pruning** (Section 4.1) on a ``sum() <`` query, on vs
  off — same results, fewer explored windows;
* the **benefit weight s** sweep (Section 4.2): high s finds results
  sooner.
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_synthetic,
    get_table,
    print_table,
)
from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    SWEngine,
    SWQuery,
    )
from repro.workloads import synthetic_query


def _engine(table, dataset, fraction, **kwargs):
    db = fresh_database(table)
    return SWEngine(db, dataset.name, sample_fraction=fraction, **kwargs)


def test_ablation_lazy_updates(benchmark):
    """Lazy re-checking should not hurt completion and helps online times."""
    dataset = get_synthetic("high")
    query = synthetic_query(dataset)
    table = get_table(dataset, "cluster")
    fraction = bench_scale().sample_fraction

    def run():
        out = {}
        for lazy in (True, False):
            run_ = _engine(table, dataset, fraction).execute(
                query, SearchConfig(alpha=0.0, lazy_updates=lazy)
            ).run
            out[lazy] = run_
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            "lazy" if lazy else "stale",
            format_seconds(r.all_results_time_s),
            format_seconds(r.completion_time_s),
            r.stats.lazy_reinserts,
            r.num_results,
        ]
        for lazy, r in out.items()
    ]
    print_table(
        "Ablation: lazy utility updates",
        ["Mode", "All results", "Completion", "Re-inserts", "Results"],
        rows,
    )
    assert out[True].num_results == out[False].num_results


def test_ablation_stratified_vs_uniform_sampling(benchmark):
    """Stratified sampling should give no-worse online discovery."""
    dataset = get_synthetic("high")
    query = synthetic_query(dataset)
    table = get_table(dataset, "cluster")
    fraction = bench_scale().sample_fraction

    def run():
        out = {}
        for sampler in ("stratified", "uniform"):
            run_ = _engine(table, dataset, fraction, sampler=sampler).execute(
                query, SearchConfig(alpha=0.0)
            ).run
            out[sampler] = run_
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [name, format_seconds(r.all_results_time_s), format_seconds(r.completion_time_s), r.num_results]
        for name, r in out.items()
    ]
    print_table(
        "Ablation: stratified vs uniform sampling",
        ["Sampler", "All results", "Completion", "Results"],
        rows,
    )
    assert out["stratified"].num_results == out["uniform"].num_results


def test_ablation_anti_monotone_pruning(benchmark):
    """sum() < v pruning keeps results identical and explores fewer windows."""
    dataset = get_synthetic("high")
    grid = dataset.grid
    # A sum-bounded query: non-negative counts -> safely anti-monotone.
    card = ShapeObjective(ShapeKind.CARDINALITY)
    total = ContentObjective.of("count")
    query = SWQuery.build(
        dimensions=("x", "y"),
        area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
        steps=grid.steps,
        conditions=[
            ShapeCondition(card, ComparisonOp.LE, 9),
            ContentCondition(total, ComparisonOp.LT, 120.0),
            ContentCondition(total, ComparisonOp.GT, 80.0),
        ],
    )
    table = get_table(dataset, "cluster")
    fraction = bench_scale().sample_fraction

    def run():
        out = {}
        for pruning in (False, True):
            run_ = _engine(table, dataset, fraction).execute(
                query, SearchConfig(alpha=0.0, assume_nonnegative=pruning)
            ).run
            out[pruning] = run_
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            "pruning" if p else "no pruning",
            r.stats.explored,
            r.stats.pruned_extensions,
            format_seconds(r.completion_time_s),
            r.num_results,
        ]
        for p, r in out.items()
    ]
    print_table(
        "Ablation: anti-monotone pruning on count() upper bound",
        ["Mode", "Explored", "Pruned-at", "Completion", "Results"],
        rows,
    )
    assert out[True].num_results == out[False].num_results
    assert out[True].stats.explored <= out[False].stats.explored


def test_ablation_benefit_weight(benchmark):
    """Higher s (benefit-first) should find the result set sooner."""
    dataset = get_synthetic("high")
    query = synthetic_query(dataset)
    table = get_table(dataset, "cluster")
    fraction = bench_scale().sample_fraction

    def run():
        out = {}
        for s in (0.2, 0.5, 0.8, 1.0):
            run_ = _engine(table, dataset, fraction).execute(
                query, SearchConfig(alpha=0.0, s=s)
            ).run
            out[s] = run_
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"s={s}", format_seconds(r.first_result_time_s), format_seconds(r.all_results_time_s), r.num_results]
        for s, r in out.items()
    ]
    print_table(
        "Ablation: benefit weight s",
        ["Weight", "First result", "All results", "Results"],
        rows,
    )
    counts = {r.num_results for r in out.values()}
    assert len(counts) == 1, f"s changed the exact result set: {counts}"
    assert out[0.8].all_results_time_s <= out[0.2].all_results_time_s * 1.5
