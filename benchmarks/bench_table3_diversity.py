"""Table 3 — Times to discover result clusters per diversification strategy.

Paper (Section 6.5), medium-spread SDSS query, clustered ordering, no
prefetch:

    Strategy       First cluster  5 clusters  All clusters
    Original            12.55        56.06       223.53
    Dist jumps          11.41        56.85       158.03
    Utility jumps       11.43        54.36       171
    4 static            19.78        56.40       674.19
    9 static            43.13       122.90     1,132.10
    16 static           33.58       154.85       825.58

Expected shapes: jump strategies cut the all-clusters time vs the basic
algorithm; static sub-areas can be much worse on medium spread.  For the
low-spread query the paper found the opposite — static strategies helped
and jumps did not — which we also report.
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_sdss,
    get_table,
    print_table,
)
from repro.core import SearchConfig, SWEngine, cluster_discovery_times
from repro.workloads import sdss_query

# The diversification trade-off only has teeth when sampling estimates
# are weak (the paper's regime: a 1 % sample of real SDSS with tight
# target intervals), so this experiment deliberately runs with a thin
# sample and the balanced benefit weight s = 0.5.
STRATEGIES = [
    ("Original", SearchConfig(alpha=0.0, s=0.5)),
    ("Dist jumps", SearchConfig(alpha=0.0, s=0.5, diversification="dist_jumps")),
    ("Utility jumps", SearchConfig(alpha=0.0, s=0.5, diversification="utility_jumps")),
    ("4 static", SearchConfig(alpha=0.0, s=0.5, diversification="static", static_subareas=4)),
    ("9 static", SearchConfig(alpha=0.0, s=0.5, diversification="static", static_subareas=9)),
    ("16 static", SearchConfig(alpha=0.0, s=0.5, diversification="static", static_subareas=16)),
]


def _run_spread(spread: str) -> dict:
    fraction = max(0.02, bench_scale().sample_fraction / 5)
    dataset = get_sdss()
    query = sdss_query(dataset, spread)
    table = get_table(dataset, "cluster")
    out: dict[str, dict] = {}
    for label, config in STRATEGIES:
        db = fresh_database(table)
        engine = SWEngine(db, dataset.name, sample_fraction=fraction)
        run = engine.execute(query, config).run
        times = cluster_discovery_times(run.results, query.grid)
        out[label] = {
            "discovery": times,
            "results": run.num_results,
            "completion": run.completion_time_s,
        }
    return out


def _run_experiment() -> dict:
    return {"medium": _run_spread("medium"), "low": _run_spread("low")}


def _mid_index(times: list[float]) -> float | None:
    if len(times) < 2:
        return None
    return times[min(len(times) - 1, max(1, len(times) // 2))]


def test_table3_cluster_discovery(benchmark):
    out = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    for spread in ("medium", "low"):
        rows = []
        for label, _ in STRATEGIES:
            entry = out[spread][label]
            times = entry["discovery"]
            rows.append(
                [
                    label,
                    format_seconds(times[0] if times else None),
                    format_seconds(_mid_index(times)),
                    format_seconds(times[-1] if times else None),
                    len(times),
                ]
            )
        print_table(
            f"Table 3: cluster discovery times ({spread}-spread SDSS, clustered, no pref)",
            ["Strategy", "First cluster", "Mid clusters", "All clusters", "#Clusters"],
            rows,
        )

    medium = out["medium"]
    counts = {entry["results"] for entry in medium.values()}
    assert len(counts) == 1, f"strategies changed the result set: {counts}"
    # At least one jump strategy improves (or matches) all-cluster discovery
    # over the basic algorithm on the medium-spread query.
    base_all = medium["Original"]["discovery"][-1]
    best_jump = min(
        medium["Dist jumps"]["discovery"][-1], medium["Utility jumps"]["discovery"][-1]
    )
    assert best_jump <= base_all * 1.1, (
        f"jump strategies should help discover clusters (base {base_all:.2f}s, "
        f"best jump {best_jump:.2f}s)"
    )
