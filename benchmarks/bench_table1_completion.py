"""Table 1 — Query completion times for different aggressiveness values.

Paper (Section 6.1): for the high-spread queries,

    Dataset       No pref    a=0.5     a=1.0     a=2.0
    Synth-x      28,206.84  13,521.55  8,602.45  6,957.33
    Synth-clust   1,123.12     859.08    886.01    817.59
    SDSS-dec     26,725.05   4,542.17  3,145.15  2,109.76
    SDSS-clust    1,510.59   1,145.37  1,130      1,158.29

plus the PostgreSQL baseline (synthetic: 1,457.84 s total / 677.94 s I/O;
SDSS: 3,589.93 s total / 849.70 s I/O).

Expected shapes: prefetching cuts the dispersed (-x / -dec) orderings by
an order of magnitude and mildly improves the clustered ones; the SW
framework beats the baseline's total time on clustered placements even
without prefetching.
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_sdss,
    get_synthetic,
    get_table,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.dbms import run_sql_baseline
from repro.workloads import sdss_query, synthetic_query

ALPHAS = (0.0, 0.5, 1.0, 2.0)


def _cases():
    synth = get_synthetic("high")
    sdss = get_sdss()
    return [
        ("Synth-x", synth, synthetic_query(synth), "axis", 0),
        ("Synth-clust", synth, synthetic_query(synth), "cluster", 0),
        ("SDSS-dec", sdss, sdss_query(sdss, "high"), "axis", 1),
        ("SDSS-clust", sdss, sdss_query(sdss, "high"), "cluster", 1),
    ]


def _run_experiment() -> dict:
    fraction = bench_scale().sample_fraction
    completions: dict[str, list[float]] = {}
    result_counts: dict[str, set[int]] = {}
    for label, dataset, query, placement, axis_dim in _cases():
        table = get_table(dataset, placement, axis_dim=axis_dim)
        times = []
        counts = set()
        for alpha in ALPHAS:
            db = fresh_database(table)
            engine = SWEngine(db, dataset.name, sample_fraction=fraction)
            report = engine.execute(query, SearchConfig(alpha=alpha))
            times.append(report.run.completion_time_s)
            counts.add(report.run.num_results)
        completions[label] = times
        result_counts[label] = counts

    baselines = {}
    for name, dataset, query in (
        ("synthetic", get_synthetic("high"), synthetic_query(get_synthetic("high"))),
        ("sdss", get_sdss(), sdss_query(get_sdss(), "high")),
    ):
        db = fresh_database(get_table(dataset, "cluster"))
        base = run_sql_baseline(db, dataset.name, query)
        baselines[name] = base
    return {"completions": completions, "counts": result_counts, "baselines": baselines}


def test_table1_completion_times(benchmark):
    out = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    completions = out["completions"]

    rows = [
        [label] + [format_seconds(t) for t in times]
        for label, times in completions.items()
    ]
    print_table(
        "Table 1: query completion times (simulated s) vs prefetch aggressiveness",
        ["Dataset", "No pref", "a=0.5", "a=1.0", "a=2.0"],
        rows,
    )
    base_rows = [
        [name, format_seconds(b.total_time_s), format_seconds(b.io_time_s),
         format_seconds(b.cpu_time_s), b.num_results]
        for name, b in out["baselines"].items()
    ]
    print_table(
        "PostgreSQL-equivalent baseline (complex SQL, blocking)",
        ["Dataset", "Total", "I/O", "CPU", "Results"],
        base_rows,
    )

    # Result sets are exact: identical across prefetch settings.
    for label, counts in out["counts"].items():
        assert len(counts) == 1, f"{label}: result count varied across alphas: {counts}"

    # Shape assertions from the paper.
    synth_x = completions["Synth-x"]
    synth_clust = completions["Synth-clust"]
    sdss_dec = completions["SDSS-dec"]
    sdss_clust = completions["SDSS-clust"]
    # Prefetching slashes the dispersed orderings.
    assert synth_x[0] > 3 * synth_x[3], "prefetch should cut Synth-x time sharply"
    assert sdss_dec[0] > 3 * sdss_dec[3], "prefetch should cut SDSS-dec time sharply"
    # Dispersed orderings are far slower than clustered without prefetch.
    assert synth_x[0] > 3 * synth_clust[0]
    assert sdss_dec[0] > 3 * sdss_clust[0]
    # SW on clustered data beats the blocking baseline even without prefetch.
    assert synth_clust[0] < out["baselines"]["synthetic"].total_time_s
