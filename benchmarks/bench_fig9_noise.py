"""Figure 9 — Impact of estimation errors on online performance.

Paper (Section 6.6): starting from an ideal (100 %) sample, Gaussian noise
(mean = the noise percentage, std 5.0) multiplies every window estimate by
``1 +/- n/100``.  Small noise barely hurts early on (false positives are
cheap while many undiscovered windows remain); >= 10-20 % degrades the
online tail, and the SDSS query — whose target interval is much tighter —
suffers at lower noise levels than the synthetic one.
"""

from __future__ import annotations

from repro.bench import (
    fresh_database,
    format_seconds,
    get_sdss,
    get_synthetic,
    get_table,
    online_series,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.sampling import NoiseModel
from repro.workloads import sdss_query, synthetic_query

NOISE_LEVELS = (0.0, 5.0, 10.0, 20.0, 50.0)
FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def _run_case(dataset, query) -> dict:
    table = get_table(dataset, "cluster")
    out: dict[float, dict] = {}
    for noise_pct in NOISE_LEVELS:
        db = fresh_database(table)
        noise = None if noise_pct == 0 else NoiseModel(noise_pct)
        # Ideal sample: fraction 1.0 — estimates are exact before noise.
        engine = SWEngine(db, dataset.name, sample_fraction=1.0, noise=noise)
        run = engine.execute(query, SearchConfig(alpha=0.0)).run
        out[noise_pct] = {
            "series": online_series(run, FRACTIONS),
            "results": run.num_results,
            "all_results": run.all_results_time_s,
        }
    return out


def _run_experiment() -> dict:
    synth = get_synthetic("medium")
    sdss = get_sdss()
    return {
        "synthetic": _run_case(synth, synthetic_query(synth)),
        "sdss": _run_case(sdss, sdss_query(sdss, "medium")),
    }


def test_fig9_noise_impact(benchmark):
    out = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    for name, per_noise in out.items():
        rows = []
        for noise_pct in NOISE_LEVELS:
            entry = per_noise[noise_pct]
            label = "No noise" if noise_pct == 0 else f"{noise_pct:.0f}%"
            rows.append(
                [label]
                + [format_seconds(t) for _, t in entry["series"]]
                + [entry["results"]]
            )
        print_table(
            f"Figure 9: online performance vs estimation noise ({name}, clustered, no pref)",
            ["Noise"] + [f"{int(f * 100)}%" for f in FRACTIONS] + ["Results"],
            rows,
        )

    for name, per_noise in out.items():
        counts = {entry["results"] for entry in per_noise.values()}
        assert len(counts) == 1, f"{name}: noise changed the exact result set: {counts}"
        # Heavy noise should not *help* the online tail.
        clean_tail = per_noise[0.0]["series"][-1][1]
        noisy_tail = per_noise[50.0]["series"][-1][1]
        assert noisy_tail is not None and clean_tail is not None
        assert noisy_tail >= clean_tail * 0.7, f"{name}: 50% noise unexpectedly improved the tail"
