"""SQLite backend overhead: wall-clock cost of real SQL behind the seam.

One canonical exploration (the paper's synthetic workload) runs twice —
simulator reference, then the SQLite backend — and the section reports
the wall-clock ratio alongside proof the runs were byte-identical
(result payloads, simulated completion time, block reads).  The
overhead number is informational — the dev-tier backend trades speed
for realism — but the equality gate is hard: a bench run that diverges
fails, because a backend that drifts from the oracle has no overhead
worth reporting.

Folded into ``BENCH_backend.json`` at the repo root via the same
latest-record-per-section scheme as the other suites.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench import emit_json
from repro.core import SearchConfig, SWEngine
from repro.workloads import make_database, synthetic_dataset, synthetic_query

_BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_backend.json"


def _record(section: str, payload: dict) -> None:
    """Latest-record-per-section fold into ``BENCH_backend.json``."""

    def _round(value):
        if isinstance(value, float):
            return round(value, 4)
        if isinstance(value, dict):
            return {k: _round(v) for k, v in value.items()}
        return value

    try:
        doc = json.loads(_BENCH_FILE.read_text())
    except (OSError, ValueError):
        doc = {}
    doc.setdefault("sections", {})[section] = _round(payload)
    doc["date"] = time.strftime("%Y-%m-%d")
    _BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _timed_run(dataset, query, backend):
    # Best-of-3 on the build: it is a ~10ms measurement, so a single
    # scheduler hiccup would dominate the gated ratio.
    build_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        database = make_database(dataset, "cluster", backend=backend)
        build_s = min(build_s, time.perf_counter() - start)

    start = time.perf_counter()
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    report = engine.execute(query, SearchConfig(alpha=1.0))
    run_s = time.perf_counter() - start

    fingerprint = [
        (
            tuple(r.window.lo),
            tuple(r.window.hi),
            tuple(sorted(r.objective_values.items())),
            r.time,
        )
        for r in report.results
    ]
    return {
        "backend": database.backend.name,
        "build_s": build_s,
        "run_s": run_s,
        "results": len(report.results),
        "completion_time_s": report.run.completion_time_s,
        "blocks_read": database.disk(dataset.name).blocks_read,
        "installed_cells": database.backend.installed_cell_count(dataset.name),
    }, fingerprint


def test_sqlite_backend_overhead():
    dataset = synthetic_dataset("high", scale=0.2, seed=5)
    query = synthetic_query(dataset)

    sim, sim_fp = _timed_run(dataset, query, "simulator")
    sql, sql_fp = _timed_run(dataset, query, "sqlite:")

    # Hard gate: the overhead number is only meaningful for a backend
    # that is byte-identical to the oracle.
    assert sql_fp == sim_fp
    assert sql["completion_time_s"] == sim["completion_time_s"]
    assert sql["blocks_read"] == sim["blocks_read"]
    assert sql["installed_cells"] == sim["installed_cells"]

    payload = {
        "workload": "synth-high scale=0.2",
        "simulator": sim,
        "sqlite": sql,
        "overhead_run": sql["run_s"] / sim["run_s"],
        "overhead_build": sql["build_s"] / max(sim["build_s"], 1e-9),
        "byte_identical": True,
    }
    # The bulk loader batches inserts (executemany over whole tables), so
    # building the SQLite mirror must stay within a small multiple of the
    # in-memory build.
    assert payload["overhead_build"] <= 3.0, payload["overhead_build"]
    _record("sqlite_overhead", payload)
    emit_json("backend_sqlite_overhead", payload, metrics=None)
    print(
        f"\nsqlite overhead: run {payload['overhead_run']:.2f}x "
        f"(sim {sim['run_s']:.2f}s -> sqlite {sql['run_s']:.2f}s), "
        f"build {payload['overhead_build']:.1f}x, "
        f"{sim['results']} identical results"
    )


def _timed_resilient_run(dataset, query, plan):
    """One sqlite-backed run with the resilience wrapper attached."""
    database = make_database(dataset, "cluster", backend="sqlite:")
    if plan is not None:
        database.attach_resilience(plan)
    start = time.perf_counter()
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    report = engine.execute(query, SearchConfig(alpha=1.0))
    run_s = time.perf_counter() - start
    fingerprint = [
        (
            tuple(r.window.lo),
            tuple(r.window.hi),
            tuple(sorted(r.objective_values.items())),
            r.time,
        )
        for r in report.results
    ]
    return run_s, report, fingerprint


def test_resilience_fault_overhead():
    """Zero-fault resilience wrapper costs <10% wall clock on sqlite.

    The retry/breaker/mirror machinery is pay-nothing when no faults
    fire: a zero-fault plan must return byte-identical results (times
    included) at under 10% overhead versus the bare backend.
    """
    from repro.storage import BackendFaultPlan

    dataset = synthetic_dataset("high", scale=0.2, seed=5)
    query = synthetic_query(dataset)

    # Warm-up, then best-of-3 each way to dampen scheduler noise.
    _timed_resilient_run(dataset, query, None)
    bare_s, bare_fp = float("inf"), None
    wrapped_s, wrapped_fp, wrapped_report = float("inf"), None, None
    for _ in range(3):
        s, _, fp = _timed_resilient_run(dataset, query, None)
        if s < bare_s:
            bare_s, bare_fp = s, fp
        s, report, fp = _timed_resilient_run(
            dataset, query, BackendFaultPlan(seed=0)
        )
        if s < wrapped_s:
            wrapped_s, wrapped_report, wrapped_fp = s, report, fp

    # Hard gates: byte-identical results, nothing injected, complete run.
    assert wrapped_fp == bare_fp
    assert wrapped_report.outcome == "complete"
    assert wrapped_report.backend_retries == 0

    overhead = wrapped_s / bare_s - 1.0
    payload = {
        "workload": "synth-high scale=0.2",
        "bare_run_s": bare_s,
        "resilient_run_s": wrapped_s,
        "overhead_fraction": overhead,
        "byte_identical": True,
    }
    assert overhead < 0.10, overhead
    _record("fault_overhead", payload)
    emit_json("backend_fault_overhead", payload, metrics=None)
    print(
        f"\nzero-fault resilience overhead: {overhead * 100:.1f}% "
        f"(bare {bare_s:.2f}s -> resilient {wrapped_s:.2f}s)"
    )
