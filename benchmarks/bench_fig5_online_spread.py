"""Figure 5 — Online performance of the synthetic queries across spreads.

Paper (Section 6.2): % of total results delivered vs time for the low /
medium / high spread synthetic queries on the x-axis ordering, at
aggressiveness 0.5 (top) and 2.0 (bottom).  "All queries behaved
approximately the same ... For the case of a=2.0 the final result was
found faster for the low spread query" (nearby clusters get swept up by
large prefetches).
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_synthetic,
    get_table,
    online_series,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.workloads import SPREADS, synthetic_query

FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def _run_experiment() -> dict:
    fraction = bench_scale().sample_fraction
    curves: dict[tuple[str, float], list[tuple[float, float | None]]] = {}
    finals: dict[tuple[str, float], float] = {}
    for spread in SPREADS:
        dataset = get_synthetic(spread)
        query = synthetic_query(dataset)
        table = get_table(dataset, "axis", axis_dim=0)
        for alpha in (0.5, 2.0):
            db = fresh_database(table)
            engine = SWEngine(db, dataset.name, sample_fraction=fraction)
            run = engine.execute(query, SearchConfig(alpha=alpha)).run
            curves[(spread, alpha)] = online_series(run, FRACTIONS)
            finals[(spread, alpha)] = run.completion_time_s
    return {"curves": curves, "finals": finals}


def test_fig5_online_performance_by_spread(benchmark):
    out = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    for alpha in (0.5, 2.0):
        rows = []
        for spread in SPREADS:
            series = out["curves"][(spread, alpha)]
            rows.append(
                [spread]
                + [format_seconds(t) for _, t in series]
                + [format_seconds(out["finals"][(spread, alpha)])]
            )
        print_table(
            f"Figure 5: time (s) to reach a fraction of all results (Synth-x, a={alpha})",
            ["Spread"] + [f"{int(f * 100)}%" for f in FRACTIONS] + ["Completion"],
            rows,
        )

    # Shapes: every curve is monotone, and results arrive well before
    # completion (the whole point of online processing).
    for key, series in out["curves"].items():
        times = [t for _, t in series if t is not None]
        assert times == sorted(times), f"{key}: online curve not monotone"
        assert times[0] < out["finals"][key] * 0.95, f"{key}: first results too late"
