"""Figure 6 — Online performance of the high-spread synthetic query.

Paper (Section 6.2): time-to-fraction curves for aggressiveness
0 / 0.5 / 1.0 / 2.0 on Synth-x (top) and Synth-clust (bottom).

Expected shapes: on the dispersed -x ordering, larger aggressiveness gives
*better* online performance throughout (prefetching pays for itself); on
the beneficial clustered ordering, a=2.0 creates much longer delays while
values up to 1.0 behave about the same — the online-vs-completion
trade-off.
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_synthetic,
    get_table,
    online_series,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.viz import render_timeline
from repro.workloads import synthetic_query

ALPHAS = (0.0, 0.5, 1.0, 2.0)
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def _run_experiment() -> dict:
    fraction = bench_scale().sample_fraction
    dataset = get_synthetic("high")
    query = synthetic_query(dataset)
    out: dict[tuple[str, float], dict] = {}
    for placement, label in (("axis", "Synth-x"), ("cluster", "Synth-clust")):
        table = get_table(dataset, placement, axis_dim=0)
        for alpha in ALPHAS:
            db = fresh_database(table)
            engine = SWEngine(db, dataset.name, sample_fraction=fraction)
            run = engine.execute(query, SearchConfig(alpha=alpha)).run
            out[(label, alpha)] = {
                "series": online_series(run, FRACTIONS),
                "completion": run.completion_time_s,
                "sparkline": render_timeline(
                    run.results, total_time=run.completion_time_s, width=50
                ),
            }
    return out


def test_fig6_online_performance_high_spread_synth(benchmark):
    out = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
    for label in ("Synth-x", "Synth-clust"):
        rows = []
        for alpha in ALPHAS:
            entry = out[(label, alpha)]
            rows.append(
                [f"a={alpha}"]
                + [format_seconds(t) for _, t in entry["series"]]
                + [format_seconds(entry["completion"])]
            )
        print_table(
            f"Figure 6: time (s) to reach a fraction of all results ({label})",
            ["Aggr."] + [f"{int(f * 100)}%" for f in FRACTIONS] + ["Completion"],
            rows,
        )
        for alpha in ALPHAS:
            print(f"a={alpha}: {out[(label, alpha)]['sparkline']}")

    # On the dispersed ordering prefetching helps completion dramatically.
    assert out[("Synth-x", 2.0)]["completion"] < out[("Synth-x", 0.0)]["completion"] / 2
    # On the clustered ordering a=2.0 delays the online tail vs no prefetch.
    tail_zero = out[("Synth-clust", 0.0)]["series"][-1][1]
    tail_two = out[("Synth-clust", 2.0)]["series"][-1][1]
    assert tail_two is not None and tail_zero is not None
    assert tail_two > tail_zero * 0.8, "clustered a=2.0 should not beat no-pref online tail by much"
