"""Front-door load generator: many concurrent socket clients, one server.

Boots an in-process :class:`~repro.serve.server.ExplorationServer` on an
ephemeral port and drives **100+ concurrent client sessions** against it
over real sockets — each client opens its own connection, submits one
exploration, polls for completion and consumes its results.  The gates:

* every admitted session completes (nothing lost under load) and the
  fleet's ``serve.*`` accounting identities still hold
  (:class:`~repro.obs.InvariantAuditor`);
* the shared semantic cache keeps paying under load: >= 50% cell hit
  rate across the identical-workload fleet;
* the run sustains the full concurrency — sessions are all submitted
  before the first completes, so live + waiting peaks at the fleet size.

Reported (informationally): wall-clock throughput (sessions/s), p50/p95
server-side completion latency, client-observed p95, and the cache hit
rate.  Folded into ``BENCH_serve.json`` at the repo root via the same
latest-record-per-section scheme as the other suites.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.bench import emit_json, print_table
from repro.obs import InvariantAuditor
from repro.serve import (
    AsyncServeClient,
    ExplorationServer,
    ServeConfig,
    TenantQuota,
)

pytestmark = pytest.mark.serve

_BENCH_FILE = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: The acceptance floor: at least this many concurrent client sessions.
N_SESSIONS = 120
_SCALE = 0.1
_STEP_BUDGET = 8
_TENANTS = ("free-0", "std-0", "std-1", "prem-0")


def _record(section: str, payload: dict) -> None:
    """Latest-record-per-section fold into ``BENCH_serve.json``."""

    def _round(value):
        if isinstance(value, float):
            return round(value, 4)
        if isinstance(value, dict):
            return {k: _round(v) for k, v in value.items()}
        return value

    try:
        doc = json.loads(_BENCH_FILE.read_text())
    except (OSError, ValueError):
        doc = {}
    doc.setdefault("sections", {})[section] = _round(payload)
    doc["date"] = time.strftime("%Y-%m-%d")
    _BENCH_FILE.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _drive_load(n_sessions: int) -> dict:
    config = ServeConfig(
        max_live=8,
        queue_limit=n_sessions,
        slice_steps=16,
        policy="wfq",
        quotas={
            "free-0": TenantQuota(tier="free"),
            "std-0": TenantQuota(tier="standard"),
            "std-1": TenantQuota(tier="standard"),
            "prem-0": TenantQuota(tier="premium"),
        },
    )
    server = ExplorationServer(config)
    host, port = await server.start()
    started = time.perf_counter()
    # A latch, not asyncio.Barrier: the CI floor is Python 3.10.
    pending = n_sessions
    all_submitted = asyncio.Event()

    async def one_client(index: int) -> dict:
        nonlocal pending
        name = f"load-{index:03d}"
        async with await AsyncServeClient.open(host, port) as client:
            t0 = time.perf_counter()
            response = await client.submit(
                name,
                "synth-low",
                scale=_SCALE,
                seed=7,
                step_budget=_STEP_BUDGET,
                tenant=_TENANTS[index % len(_TENANTS)],
            )
            # Hold every session open until all n are in flight — this is
            # what makes the measured run genuinely concurrent.
            pending -= 1
            if pending == 0:
                all_submitted.set()
            await all_submitted.wait()
            if response["outcome"] not in ("live", "waiting"):
                return {"name": name, "outcome": response["outcome"], "latency": None}
            status = await client.wait(name, poll_s=0.02, timeout_s=300.0)
            page = await client.results(name)
            return {
                "name": name,
                "outcome": status["state"],
                "latency": time.perf_counter() - t0,
                "results": page["total"],
            }

    outcomes = await asyncio.gather(*(one_client(i) for i in range(n_sessions)))
    wall_s = time.perf_counter() - started

    async with await AsyncServeClient.open(host, port) as client:
        stats = await client.stats()
        await client.shutdown()
    await server.wait_stopped()
    return {
        "outcomes": outcomes,
        "stats": stats,
        "wall_s": wall_s,
        "n_sessions": n_sessions,
    }


def test_bench_serve_load():
    load = asyncio.run(_drive_load(N_SESSIONS))
    outcomes = load["outcomes"]
    stats = load["stats"]
    counters = stats["counters"]

    completed = [o for o in outcomes if o["outcome"] == "done"]
    bounced = [o for o in outcomes if o["outcome"] in ("rejected", "throttled")]
    assert len(completed) + len(bounced) == N_SESSIONS
    # The queue is sized for the fleet: everything admitted, everything done.
    assert len(completed) == N_SESSIONS, f"lost sessions: {len(completed)}"
    assert counters["serve.sessions_completed"] == N_SESSIONS

    # Accounting identities must hold under socket load exactly as they
    # do in the scripted harness.
    InvariantAuditor({"counters": counters, "gauges": stats["gauges"]}).verify()

    lookups = counters.get("serve.cache.lookup_cells", 0.0)
    hits = counters.get("serve.cache.hit_cells", 0.0)
    hit_rate = hits / lookups if lookups else 0.0
    assert hit_rate >= 0.5, f"cache hit rate {hit_rate:.1%} under load"

    client_latencies = [o["latency"] for o in completed]
    server_latencies = list(stats["latencies"].values())
    assert len(server_latencies) == N_SESSIONS
    payload = {
        "sessions": N_SESSIONS,
        "completed": len(completed),
        "wall_s": load["wall_s"],
        "throughput_sessions_per_s": len(completed) / load["wall_s"],
        "latency_p50_s": _percentile(server_latencies, 0.50),
        "latency_p95_s": _percentile(server_latencies, 0.95),
        "client_latency_p95_s": _percentile(client_latencies, 0.95),
        "cache_hit_rate": hit_rate,
        "results_total": sum(o["results"] for o in completed),
    }
    emit_json("serve_load", payload)
    print_table(
        "serve load (100+ concurrent sessions)",
        ["metric", "value"],
        [
            ["sessions", f"{payload['sessions']}"],
            ["throughput", f"{payload['throughput_sessions_per_s']:.1f}/s"],
            ["latency p50", f"{payload['latency_p50_s'] * 1e3:.1f} ms"],
            ["latency p95", f"{payload['latency_p95_s'] * 1e3:.1f} ms"],
            ["cache hit rate", f"{payload['cache_hit_rate']:.1%}"],
        ],
    )
    _record("load", payload)
