"""Ablation: insertion-built R-tree (-ind) vs STR-packed leaf ordering.

The paper attributes the ``-ind`` placement's overhead to insertion-built
R-trees giving no ordering guarantee.  This ablation isolates that claim:
the same index structure bulk-loaded with STR produces near-clustered
behaviour, confirming the penalty comes from insertion-order leaf quality
rather than from index-ordering per se.
"""

from __future__ import annotations

from repro.bench import (
    bench_scale,
    fresh_database,
    format_seconds,
    get_synthetic,
    get_table,
    print_table,
)
from repro.core import SearchConfig, SWEngine
from repro.workloads import synthetic_query

PLACEMENTS = ("index", "str", "cluster")


def test_ablation_index_vs_str_placement(benchmark):
    dataset = get_synthetic("high")
    query = synthetic_query(dataset)
    fraction = bench_scale().sample_fraction

    def run():
        out = {}
        for placement in PLACEMENTS:
            db = fresh_database(get_table(dataset, placement))
            report = SWEngine(db, dataset.name, sample_fraction=fraction).execute(
                query, SearchConfig(alpha=0.0)
            )
            out[placement] = {
                "total": report.run.completion_time_s,
                "rereads": report.disk_stats["blocks_reread"],
                "results": report.run.num_results,
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [p, format_seconds(out[p]["total"]), f"{int(out[p]['rereads']):,}", out[p]["results"]]
        for p in PLACEMENTS
    ]
    print_table(
        "Ablation: insertion R-tree vs STR-packed leaf ordering",
        ["Placement", "Total (s)", "Re-reads (blk)", "Results"],
        rows,
    )

    counts = {v["results"] for v in out.values()}
    assert len(counts) == 1
    # STR should recover most of the gap between -ind and -clust.
    assert out["str"]["total"] < out["index"]["total"]
    assert out["str"]["rereads"] < out["index"]["rereads"]
