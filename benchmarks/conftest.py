"""Benchmark-suite fixtures: every bench run ships its metrics block.

``repro.bench.fresh_database`` attaches a fresh :class:`MetricsRegistry`
to each database it builds.  The autouse fixture below drains whatever a
test accumulated and emits it as one ``BENCH_JSON`` record per test, so
observability data rides along with every benchmark without each file
calling ``emit_json`` itself.  Tests that already emit records (the
hotpath suite) drain the pool themselves; the fixture then has nothing
left to ship.
"""

from __future__ import annotations

import pytest

from repro.bench import drain_session_metrics, emit_json


@pytest.fixture(autouse=True)
def _ship_metrics_block(request):
    drain_session_metrics()  # drop leftovers from collection/imports
    yield
    snapshot = drain_session_metrics()
    if snapshot is not None:
        safe = request.node.name.replace("[", "_").replace("]", "")
        emit_json(f"metrics_{safe}", {"metrics": snapshot}, metrics=None)
