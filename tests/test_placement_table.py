"""Unit tests for physical placements and heap tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Grid, Rect
from repro.storage import (
    HeapTable,
    TableSchema,
    axis_order,
    cell_flat_ids,
    cluster_order,
    hilbert_order,
    index_order,
    order_rows,
    random_order,
)


@pytest.fixture()
def coords():
    rng = np.random.default_rng(7)
    return rng.uniform(0, 10, (300, 2))


@pytest.fixture()
def unit_grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


class TestPlacements:
    def test_axis_order_sorts_primary(self, coords):
        perm = axis_order(coords, primary_dim=0)
        xs = coords[perm, 0]
        assert np.all(np.diff(xs) >= 0)

    def test_axis_order_other_dim(self, coords):
        perm = axis_order(coords, primary_dim=1)
        ys = coords[perm, 1]
        assert np.all(np.diff(ys) >= 0)

    def test_axis_order_validates_dim(self, coords):
        with pytest.raises(ValueError, match="out of range"):
            axis_order(coords, primary_dim=2)

    def test_all_orders_are_permutations(self, coords, unit_grid):
        n = coords.shape[0]
        for perm in (
            axis_order(coords),
            hilbert_order(coords),
            cluster_order(coords, unit_grid),
            index_order(coords),
            random_order(n),
        ):
            assert sorted(perm) == list(range(n))

    def test_cluster_order_groups_cells(self, coords, unit_grid):
        perm = cluster_order(coords, unit_grid)
        flats = cell_flat_ids(coords[perm], unit_grid)
        # Each cell's tuples are contiguous: cell ids never reappear.
        seen = set()
        previous = None
        for f in flats:
            if f != previous:
                assert f not in seen, "cell id reappeared — grouping broken"
                seen.add(f)
                previous = f

    def test_cluster_order_requires_grid(self, coords):
        with pytest.raises(ValueError, match="requires the grid"):
            order_rows("cluster", coords)

    def test_order_rows_dispatch(self, coords, unit_grid):
        perm = order_rows("hilbert", coords)
        np.testing.assert_array_equal(perm, hilbert_order(coords))

    def test_cell_flat_ids_outside_marked(self, unit_grid):
        coords = np.array([[5.0, 5.0], [11.0, 5.0], [-1.0, 2.0]])
        flats = cell_flat_ids(coords, unit_grid)
        assert flats[0] == unit_grid.flat_id((5, 5))
        assert flats[1] == -1
        assert flats[2] == -1

    def test_1d_coords_accepted(self):
        grid = Grid(Rect.from_bounds([(0.0, 10.0)]), (1.0,))
        coords = np.array([3.0, 1.0, 7.0])
        perm = order_rows("axis", coords, grid=grid)
        np.testing.assert_array_equal(perm, [1, 0, 2])


class TestTableSchema:
    def test_attribute_columns(self):
        schema = TableSchema(["x", "y", "v"], ["x", "y"])
        assert schema.attribute_columns == ("v",)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema(["x", "x"], ["x"])

    def test_coordinate_must_exist(self):
        with pytest.raises(ValueError, match="not in schema"):
            TableSchema(["x"], ["y"])

    def test_needs_coordinates(self):
        with pytest.raises(ValueError, match="coordinate column"):
            TableSchema(["x"], [])


class TestHeapTable:
    def test_shape(self, small_table):
        assert small_table.num_rows == 600
        assert small_table.num_blocks == 38  # ceil(600/16)
        assert small_table.ndim == 2

    def test_column_read_only(self, small_table):
        column = small_table.column("v")
        with pytest.raises(ValueError):
            column[0] = 99.0

    def test_unknown_column(self, small_table):
        with pytest.raises(KeyError, match="no column"):
            small_table.column("nope")

    def test_block_rows(self, small_table):
        assert small_table.block_rows(0) == slice(0, 16)
        assert small_table.block_rows(37) == slice(592, 600)
        with pytest.raises(ValueError, match="out of range"):
            small_table.block_rows(38)

    def test_rows_of_blocks(self, small_table):
        rows = small_table.rows_of_blocks(np.array([0, 37]))
        assert rows.size == 16 + 8
        assert rows[0] == 0 and rows[-1] == 599

    def test_blocks_matching_exact(self, small_table):
        lows, highs = (2.0, 3.0), (4.0, 5.0)
        blocks, matching = small_table.blocks_matching(lows, highs)
        coords = small_table.coordinates()
        expected_rows = [
            i
            for i in range(small_table.num_rows)
            if lows[0] <= coords[i, 0] < highs[0] and lows[1] <= coords[i, 1] < highs[1]
        ]
        np.testing.assert_array_equal(matching, expected_rows)
        np.testing.assert_array_equal(
            blocks, np.unique(np.array(expected_rows) // 16)
        )

    def test_blocks_matching_empty_region(self, small_table):
        blocks, matching = small_table.blocks_matching((20.0, 20.0), (30.0, 30.0))
        assert blocks.size == 0 and matching.size == 0

    def test_mbr_prefilter_superset(self, small_table):
        lows, highs = (1.0, 1.0), (2.0, 2.0)
        coarse = set(small_table.blocks_intersecting(lows, highs).tolist())
        exact = set(small_table.blocks_matching(lows, highs)[0].tolist())
        assert exact <= coarse

    def test_validation(self):
        schema = TableSchema(["x"], ["x"])
        with pytest.raises(ValueError, match="empty"):
            HeapTable("t", schema, {"x": np.array([])})
        with pytest.raises(ValueError, match="lengths differ"):
            HeapTable(
                "t",
                TableSchema(["x", "y"], ["x"]),
                {"x": np.array([1.0]), "y": np.array([1.0, 2.0])},
            )
        with pytest.raises(ValueError, match="missing column"):
            HeapTable("t", TableSchema(["x", "y"], ["x"]), {"x": np.array([1.0])})
        with pytest.raises(ValueError, match="positive"):
            HeapTable("t", schema, {"x": np.array([1.0])}, tuples_per_block=0)
