"""Cross-process service smoke: the CLI server as a real subprocess.

The one test here is the deployment-shaped check: boot
``python -m repro serve --listen --record`` as an actual OS process,
talk to it over TCP with the blocking client, stop it with the
protocol's ``shutdown`` op, assert a clean exit — then prove the
recorded journal replays byte-identically both in-process and through
``repro serve --replay``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.serve import ServeClient, replay_journal

pytestmark = [pytest.mark.serve, pytest.mark.serve_smoke]

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _server_env() -> dict:
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    current = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{current}" if current else src
    return env


def test_subprocess_server_smoke(tmp_path):
    journal = tmp_path / "smoke.journal"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--listen", "127.0.0.1:0",
            "--record", str(journal),
            "--policy", "wfq",
            "--max-live", "2", "--queue-limit", "4", "--slice-steps", "8",
            "--tenant-quota", "smoke=standard:4",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_server_env(),
        cwd=_REPO_ROOT,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"serving on 127\.0\.0\.1:(\d+)", banner)
        assert match, f"no banner in {banner!r}"
        port = int(match.group(1))

        with ServeClient("127.0.0.1", port) as client:
            assert client.hello()["recording"] is True
            for i in range(3):
                response = client.submit(
                    f"smoke-{i}", "synth-low", scale=0.1,
                    step_budget=12, tenant="smoke",
                )
                assert response["outcome"] in ("live", "waiting")
            for i in range(3):
                status = client.wait(f"smoke-{i}", poll_s=0.02, timeout_s=120.0)
                assert status["state"] == "done"
            assert client.results("smoke-0")["total"] > 0
            assert client.shutdown()["stopping"] is True

        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0, stderr
        assert "journal:" in stdout or journal.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    # The wall-clock run replays byte-identically in simulated time...
    report = replay_journal(journal)
    assert report.matches, report.mismatches
    assert report.fingerprint == report.recorded_fingerprint
    assert report.events >= 3  # three submits plus their ticks

    # ...and the CLI verifier agrees, from its own fresh process.
    verify = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--replay", str(journal)],
        capture_output=True,
        text=True,
        env=_server_env(),
        cwd=_REPO_ROOT,
        timeout=120,
    )
    assert verify.returncode == 0, verify.stdout + verify.stderr
    assert "byte-identical" in verify.stdout
