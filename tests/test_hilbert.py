"""Unit and property tests for the space-filling curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import hilbert_d, hilbert_xy, morton_code
from repro.storage.hilbert import curve_order


class TestHilbert:
    def test_order_1_curve(self):
        # The 2x2 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
        xs = np.array([0, 0, 1, 1])
        ys = np.array([0, 1, 1, 0])
        np.testing.assert_array_equal(hilbert_d(xs, ys, 1), [0, 1, 2, 3])

    def test_bijection_order_3(self):
        side = 8
        xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        d = hilbert_d(xs.ravel(), ys.ravel(), 3)
        assert sorted(d) == list(range(side * side))

    def test_adjacency(self):
        """Consecutive curve positions are grid neighbors — the locality
        property the -H placement relies on."""
        order = 4
        d = np.arange((1 << order) ** 2)
        x, y = hilbert_xy(d, order)
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.all(steps == 1)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=20))
    def test_roundtrip(self, ds):
        d = np.array(ds)
        x, y = hilbert_xy(d, 3)
        np.testing.assert_array_equal(hilbert_d(x, y, 3), d)

    def test_range_validation(self):
        with pytest.raises(ValueError, match="out of range"):
            hilbert_d(np.array([8]), np.array([0]), 3)
        with pytest.raises(ValueError, match="out of range"):
            hilbert_xy(np.array([64]), 3)

    def test_order_validation(self):
        with pytest.raises(ValueError, match="order"):
            hilbert_d(np.array([0]), np.array([0]), 0)


class TestMorton:
    def test_2d_interleave(self):
        # Bit d of each coordinate goes to position bit*ndim + d.
        coords = np.array([[0, 0], [1, 0], [0, 1], [1, 1]])
        np.testing.assert_array_equal(morton_code(coords, 1), [0, 1, 2, 3])

    def test_3d_bijection(self):
        side = 4
        pts = np.array([(i, j, k) for i in range(side) for j in range(side) for k in range(side)])
        codes = morton_code(pts, 2)
        assert sorted(codes) == list(range(side ** 3))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="n_points"):
            morton_code(np.array([1, 2, 3]), 2)


class TestCurveOrder:
    def test_returns_permutation(self):
        rng = np.random.default_rng(0)
        coords = rng.uniform(0, 100, (50, 2))
        order = curve_order(coords, np.array([0, 0]), np.array([100, 100]), order=6)
        assert sorted(order) == list(range(50))

    def test_1d_sorts_by_coordinate(self):
        coords = np.array([[5.0], [1.0], [3.0]])
        order = curve_order(coords, np.array([0.0]), np.array([10.0]), order=6)
        np.testing.assert_array_equal(coords[order].ravel(), [1.0, 3.0, 5.0])

    def test_3d_falls_back_to_morton(self):
        rng = np.random.default_rng(1)
        coords = rng.uniform(0, 1, (20, 3))
        order = curve_order(coords, np.zeros(3), np.ones(3), order=4)
        assert sorted(order) == list(range(20))

    def test_locality_improves_over_random(self):
        """Hilbert-ordered neighbors are spatially closer than random order."""
        rng = np.random.default_rng(2)
        coords = rng.uniform(0, 1, (500, 2))
        order = curve_order(coords, np.zeros(2), np.ones(2), order=8)
        sorted_coords = coords[order]
        hilbert_gap = np.linalg.norm(np.diff(sorted_coords, axis=0), axis=1).mean()
        random_gap = np.linalg.norm(np.diff(coords, axis=0), axis=1).mean()
        assert hilbert_gap < random_gap / 3

    def test_degenerate_bounds_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            curve_order(np.zeros((3, 2)), np.zeros(2), np.zeros(2))
