"""Differential equivalence: the SQLite backend versus the simulator oracle.

The simulator is the byte-deterministic reference; the SQLite backend
serves the same engine stack from real SQL.  Every test here runs one
workload twice — once per backend, via the shared ``BackendPair``
fixture — and asserts the runs are *byte-identical*: result sets
(windows, bounds, objective values, emission times), qualifying-window
key sets, trace timelines, block-read counts, metrics snapshots (after
collapsing the backend-labelled ``db.backend_reads.*`` counter), and
auditor identities.

Coverage comes in three tiers:

* the golden-query corpus (the serial cases of ``tests/golden_cases.py``)
  replayed end-to-end on both backends;
* hypothesis-generated SW queries over a fixed dataset, engine
  end-to-end (result byte-equality + auditor parity);
* hypothesis-generated *tables* — random rows, block sizes, grids, NaN
  values — with random scans and queries, where the bulk (200+) of the
  randomized cases runs at the storage layer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from .golden_cases import _workload, event_jsonable, results_jsonable
from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    Grid,
    Rect,
    SearchConfig,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    SWEngine,
    SWQuery,
    col,
)
from repro.core.trace import SearchTrace
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.storage import COUNT_KEY, HeapTable, TableSchema
from repro.workloads import synthetic_dataset, synthetic_query

pytestmark = [pytest.mark.backend, pytest.mark.slow]


# -- comparison helpers -------------------------------------------------------


def _normalized_counters(snapshot: dict) -> dict:
    """Counters with the backend-labelled read counter made backend-agnostic."""
    counters = dict(snapshot["counters"])
    total = sum(
        counters.pop(k) for k in list(counters) if k.startswith("db.backend_reads.")
    )
    if total:
        counters["db.backend_reads"] = total
    return counters


def _normalized_events(trace: SearchTrace, expect_backend: str) -> list[dict]:
    """JSON-safe trace events with the backend READ label checked, then dropped."""
    events = []
    for event in trace:
        payload = event_jsonable(event)
        backend = payload["detail"].pop("backend", None)
        if backend is not None:
            assert backend == expect_backend
        events.append(payload)
    return events


def _assert_audited_parity(ref: MetricsRegistry, cand: MetricsRegistry) -> None:
    ref_report = InvariantAuditor(ref).report()
    cand_report = InvariantAuditor(cand).report()
    assert ref_report["ok"], ref_report["violations"]
    assert cand_report["ok"], cand_report["violations"]
    assert ref_report["checked"] == cand_report["checked"]


def _bits(value: float) -> bytes:
    """Bit pattern of a float — NaN-safe byte equality."""
    return np.float64(value).tobytes()


def _scan_fingerprint(scan) -> dict:
    """A CellScan's aggregation as bitwise-comparable structures."""
    return {
        "cells": {
            int(cell): {
                key: (s.count, _bits(s.total), _bits(s.minimum), _bits(s.maximum))
                for key, s in sorted(entry.items())
            }
            for cell, entry in scan.cells.items()
        },
        "tuples_scanned": scan.tuples_scanned,
        "blocks_touched": scan.blocks_touched,
        "elapsed_s": _bits(scan.elapsed_s),
        "lost_blocks": scan.lost_blocks,
        "degraded_cells": scan.degraded_cells,
    }


def _run_engine(database, dataset, query, with_trace=True):
    registry = MetricsRegistry()
    database.attach_metrics(registry)
    trace = SearchTrace() if with_trace else None
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    report = engine.execute(query, SearchConfig(alpha=1.0), trace=trace)
    return report, registry, trace


# -- tier 1: the golden-query corpus -----------------------------------------


@pytest.mark.parametrize("kind", ["synth", "sdss"])
def test_golden_corpus_replay_matches(backend_pair, kind):
    """The pinned corpus queries are byte-identical across backends."""
    dataset, query = _workload(kind)
    ref_db, cand_db = backend_pair.databases_for(dataset, "cluster")
    assert ref_db.backend.name == "simulator"
    assert cand_db.backend.name == "sqlite"

    ref, ref_reg, ref_trace = _run_engine(ref_db, dataset, query)
    cand, cand_reg, cand_trace = _run_engine(cand_db, dataset, query)

    assert results_jsonable(cand.results) == results_jsonable(ref.results)
    assert cand.run.completion_time_s == ref.run.completion_time_s
    shape = query.grid.shape
    assert sorted(r.window.key(shape) for r in cand.results) == sorted(
        r.window.key(shape) for r in ref.results
    )
    assert _normalized_events(cand_trace, "sqlite") == _normalized_events(
        ref_trace, "simulator"
    )
    assert _normalized_counters(cand_reg.snapshot()) == _normalized_counters(
        ref_reg.snapshot()
    )
    assert cand_db.disk(dataset.name).blocks_read == ref_db.disk(dataset.name).blocks_read
    assert cand_db.backend.installed_cell_count(
        dataset.name
    ) == ref_db.backend.installed_cell_count(dataset.name)
    _assert_audited_parity(ref_reg, cand_reg)


# -- tier 2: hypothesis SW queries, engine end-to-end -------------------------

_DATASET = synthetic_dataset("high", scale=0.1, seed=5)
_CANONICAL_QUERY = synthetic_query(_DATASET)


def _build_query(grid, card_hi: int, min_len: int, avg_lo: float, width: float) -> SWQuery:
    avg_value = ContentObjective.of("avg", col("value"))
    conditions = [
        ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, card_hi),
        ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, min_len),
        ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.GE, min_len),
        ContentCondition(avg_value, ComparisonOp.GT, avg_lo),
        ContentCondition(avg_value, ComparisonOp.LT, avg_lo + width),
    ]
    return SWQuery.build(
        dimensions=("x", "y"),
        area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
        steps=grid.steps,
        conditions=conditions,
    )


query_params = st.tuples(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=2),
    st.floats(min_value=0.0, max_value=35.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=1.0, max_value=25.0, allow_nan=False, allow_infinity=False),
)


@given(params=query_params)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
def test_random_queries_byte_identical(backend_pair, params):
    """Hypothesis SW queries: full engine runs agree byte-for-byte."""
    query = _build_query(_DATASET.grid, *params)
    ref_db, cand_db = backend_pair.databases_for(_DATASET, "cluster")
    ref, ref_reg, _ = _run_engine(ref_db, _DATASET, query, with_trace=False)
    cand, cand_reg, _ = _run_engine(cand_db, _DATASET, query, with_trace=False)

    assert results_jsonable(cand.results) == results_jsonable(ref.results)
    shape = query.grid.shape
    assert {r.window.key(shape) for r in cand.results} == {
        r.window.key(shape) for r in ref.results
    }
    assert _normalized_counters(cand_reg.snapshot()) == _normalized_counters(
        ref_reg.snapshot()
    )
    _assert_audited_parity(ref_reg, cand_reg)


# -- tier 3: hypothesis tables ------------------------------------------------


def _random_table(seed: int, rows: int, tpb: int, nan_values: bool) -> HeapTable:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 10.0, rows)
    y = rng.uniform(0.0, 10.0, rows)
    v = rng.normal(25.0, 5.0, rows)
    if nan_values:
        # NaN measurement values (not coordinates): both backends must
        # round-trip and aggregate them to bit-identical NaN stats.
        v[rng.random(rows) < 0.05] = np.nan
    schema = TableSchema(["x", "y", "value"], ["x", "y"])
    return HeapTable(
        f"rand{seed}", schema, {"x": x, "y": y, "value": v}, tuples_per_block=tpb
    )


table_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # rng seed
    st.integers(min_value=50, max_value=800),    # rows
    st.integers(min_value=4, max_value=64),      # tuples per block
    st.booleans(),                               # sprinkle NaN values
)

box_params = st.tuples(
    st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
    st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
)


@given(table=table_params, box=box_params, steps=st.integers(min_value=1, max_value=4))
@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
def test_random_scans_byte_identical(backend_pair, table, box, steps):
    """200 random table/scan pairs: range-aggregate GROUP BY agrees bitwise.

    Each scan runs twice per backend — the repeat exercises the
    backend-specific install dedup (in-memory set vs ``ON CONFLICT DO
    NOTHING``), whose counters must also agree.
    """
    heap = _random_table(*table)
    grid = Grid(
        Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (float(steps), float(steps))
    )
    x0, y0, w, h = box
    lows = [x0, y0]
    highs = [min(x0 + w, 10.0), min(y0 + h, 10.0)]
    objectives = [ContentObjective.of("avg", col("value"))]

    ref_db, cand_db = backend_pair.databases(heap)
    registries = []
    fingerprints = []
    for db in (ref_db, cand_db):
        registry = MetricsRegistry()
        db.attach_metrics(registry)
        scan = db.range_cell_aggregates(heap.name, grid, lows, highs, objectives)
        repeat = db.range_cell_aggregates(heap.name, grid, lows, highs, objectives)
        registries.append(registry)
        fingerprints.append((_scan_fingerprint(scan), _scan_fingerprint(repeat)))

    assert fingerprints[0] == fingerprints[1]
    ref_counters = _normalized_counters(registries[0].snapshot())
    cand_counters = _normalized_counters(registries[1].snapshot())
    assert ref_counters == cand_counters
    # The repeat scan re-attempted every occupied cell; the backend must
    # have deduped all of them (set membership vs ON CONFLICT).
    occupied = len(fingerprints[0][0]["cells"])
    if occupied:
        assert ref_counters["db.cell_installs_deduped"] >= occupied
    assert cand_db.backend.installed_cell_count(heap.name) == ref_db.backend.installed_cell_count(heap.name)
    assert cand_db.disk(heap.name).blocks_read == ref_db.disk(heap.name).blocks_read


@given(table=table_params, params=query_params)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
def test_random_tables_random_queries(backend_pair, table, params):
    """Random tables + random SW queries: window keys and I/O agree."""
    heap = _random_table(*table)
    grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
    query = _build_query(grid, *params)

    keys = []
    reads = []
    for db in backend_pair.databases(heap):
        registry = MetricsRegistry()
        db.attach_metrics(registry)
        engine = SWEngine(db, heap.name, sample_fraction=0.1)
        report = engine.execute(query, SearchConfig(alpha=1.0))
        keys.append({r.window.key(query.grid.shape) for r in report.results})
        reads.append(db.disk(heap.name).blocks_read)
        audit = InvariantAuditor(registry).report()
        assert audit["ok"], audit["violations"]
    assert keys[0] == keys[1]
    assert reads[0] == reads[1]


def test_full_scan_byte_identical(backend_pair):
    """The sequential-scan baseline path agrees bitwise too."""
    heap = _random_table(7, 400, 16, True)
    grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
    objectives = [ContentObjective.of("avg", col("value"))]
    ref_db, cand_db = backend_pair.databases(heap)
    ref = ref_db.full_scan_cell_aggregates(heap.name, grid, objectives)
    cand = cand_db.full_scan_cell_aggregates(heap.name, grid, objectives)
    assert _scan_fingerprint(cand) == _scan_fingerprint(ref)
    assert cand.backend == "sqlite"
    assert ref.backend == "simulator"
    assert COUNT_KEY in next(iter(ref.cells.values()))


# -- integrity layer over both backends ---------------------------------------


def test_cli_scrub_sqlite_backend_matches_simulator():
    """``repro scrub --backend sqlite:`` prints the simulator's transcript.

    The integrity layer sits above the backend seam, so a seeded
    corruption plan must detect, repair, and quarantine the exact same
    blocks whichever substrate serves the bytes.
    """
    from repro.cli import main

    transcripts = []
    for spec in ("simulator", "sqlite:"):
        lines: list[str] = []
        code = main(
            [
                "scrub",
                "--workload",
                "synth-high",
                "--scale",
                "0.2",
                "--chaos-seed",
                "7",
                "--backend",
                spec,
                "--no-audit",
            ],
            out=lines.append,
        )
        assert code == 0
        # The header names the backend; everything after it must agree.
        assert lines[0].startswith("workload synth-high")
        transcripts.append(lines[1:])
    assert transcripts[0] == transcripts[1]
    assert any(line.startswith("scrubbed ") for line in transcripts[1])


def test_quarantined_gather_parity(backend_pair):
    """Post-quarantine gathers stay byte-identical across backends.

    Run the same chaos scrub on both databases until blocks quarantine,
    then gather every column of every quarantined block directly from
    each backend's table handle: the quarantine decision and the
    surviving bytes must agree bitwise.
    """
    from repro.storage import Scrubber, StorageFaultPlan

    heap = _random_table(11, 600, 16, True)
    ref_db, cand_db = backend_pair.databases(heap)
    quarantined = []
    for db in (ref_db, cand_db):
        db.attach_integrity(StorageFaultPlan.chaos(13, 0.2))
        Scrubber(db, heap.name, blocks_per_step=32).run()
        quarantined.append(sorted(db.integrity(heap.name).quarantined))
    assert quarantined[0] == quarantined[1]
    assert quarantined[0], "a 0.2-rate chaos plan must quarantine something"

    ref_handle = ref_db.backend.handle(heap.name)
    cand_handle = cand_db.backend.handle(heap.name)
    for block in quarantined[0]:
        rows = np.arange(ref_handle.num_rows)[ref_handle.block_rows(block)]
        assert np.array_equal(rows, np.arange(cand_handle.num_rows)[cand_handle.block_rows(block)])
        for column in heap.schema.columns:
            ref_vals = ref_handle.gather(column, rows)
            cand_vals = cand_handle.gather(column, rows)
            assert np.array_equal(ref_vals, cand_vals, equal_nan=True)
