"""Unit tests for the observability layer: metrics, spans, auditor.

Covers the primitives themselves (counters, gauges, fixed-bound
histograms, snapshot/merge), the span nesting semantics fixed for shared
clocks (child time never double-counted in the parent's ``self_s``;
reentrant same-name spans do not inflate ``total_s``), the pay-nothing
contract (attaching a registry must not change search behavior), and the
auditor's positive/negative behavior on hand-built snapshots.
"""

from __future__ import annotations

import pytest

from repro.clock import SimClock
from repro.core import SearchConfig, SWEngine
from repro.errors import ConfigError
from repro.obs import (
    DEFAULT_CELL_BOUNDS,
    InvariantAuditor,
    InvariantViolation,
    MetricsRegistry,
)
from repro.workloads import make_database


# --- primitives -----------------------------------------------------------------


class TestRegistryPrimitives:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 2.5)
        assert reg.value("a.b") == 3.5
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_gauge_tracks_value(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(4.0)
        assert reg.snapshot()["gauges"]["depth"] == 4.0

    def test_histogram_buckets_and_total(self):
        reg = MetricsRegistry()
        h = reg.histogram("cells")
        assert h.bounds == DEFAULT_CELL_BOUNDS
        for v in (0.5, 1.0, 3.0, 10_000.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["cells"]
        assert sum(snap["counts"]) == 4
        assert snap["counts"][-1] == 1  # overflow bucket
        assert snap["total"] == pytest.approx(10_004.5)

    def test_histogram_merge_requires_identical_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0))
        b.histogram("h", bounds=(1.0, 4.0))
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_merge_adds_counters_and_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2.0)
        b.inc("c", 3.0)
        a.gauge("g").set(5.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.value("c") == 5.0
        assert a.snapshot()["gauges"]["g"] == 5.0

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("z.last", "a.first", "m.mid"):
            reg.inc(name)
        assert list(reg.snapshot()["counters"]) == ["a.first", "m.mid", "z.last"]

    def test_span_without_clock_is_config_error(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().span("seed")


# --- span nesting ---------------------------------------------------------------


class TestSpanNesting:
    def test_child_time_not_double_counted_in_parent_self(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        with reg.span("query"):
            clock.advance(1.0)          # query's own work
            with reg.span("read"):
                clock.advance(3.0)      # child work
            clock.advance(0.5)          # more of query's own work
        c = reg.value
        assert c("span.query.total_s") == pytest.approx(4.5)
        assert c("span.query.self_s") == pytest.approx(1.5)
        assert c("span.read.total_s") == pytest.approx(3.0)
        assert c("span.read.self_s") == pytest.approx(3.0)
        # The partition is exact: self times sum to the elapsed time.
        assert c("span.query.self_s") + c("span.read.self_s") == pytest.approx(4.5)

    def test_sibling_children_accumulate(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        with reg.span("expand"):
            for _ in range(3):
                with reg.span("read"):
                    clock.advance(1.0)
        assert reg.value("span.expand.self_s") == pytest.approx(0.0)
        assert reg.value("span.read.count") == 3.0
        assert reg.value("span.read.total_s") == pytest.approx(3.0)

    def test_reentrant_span_skips_total(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        with reg.span("read"):
            clock.advance(1.0)
            with reg.span("read"):        # read-within-read (recovery path)
                clock.advance(2.0)
            clock.advance(0.5)
        c = reg.value
        assert c("span.read.count") == 2.0
        # total_s is a true wall clock: the outer span alone covers it.
        assert c("span.read.total_s") == pytest.approx(3.5)
        assert c("span.read.self_s") == pytest.approx(3.5)

    def test_exception_unwind_closes_children(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        outer = reg.span("outer")
        outer.__enter__()
        inner = reg.span("inner")
        inner.__enter__()
        clock.advance(2.0)
        outer.close()  # inner was abandoned by an unwind
        assert reg.value("span.inner.count") == 1.0
        assert reg.value("span.outer.self_s") == pytest.approx(0.0)
        assert reg._span_stack == []

    def test_close_is_idempotent(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        span = reg.span("seed")
        with span:
            clock.advance(1.0)
        span.close()
        assert reg.value("span.seed.count") == 1.0

    def test_spans_never_advance_the_clock(self):
        clock = SimClock()
        reg = MetricsRegistry(clock=clock)
        with reg.span("seed"):
            pass
        assert clock.now == 0.0


# --- pay-nothing contract -------------------------------------------------------


class TestPayNothing:
    def test_attached_registry_does_not_change_behavior(self, tiny_dataset, tiny_query):
        def run(with_metrics: bool):
            db = make_database(tiny_dataset, "cluster")
            registry = None
            if with_metrics:
                registry = MetricsRegistry()
                db.attach_metrics(registry)
            engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.1)
            report = engine.execute(tiny_query, SearchConfig(alpha=1.0))
            fingerprint = (
                [(r.window, r.time) for r in report.results],
                report.run.completion_time_s,
                report.run.stats,
            )
            return fingerprint, registry

        bare, none_reg = run(False)
        instrumented, registry = run(True)
        assert none_reg is None
        assert instrumented == bare
        assert registry.value("search.results") == len(bare[0])

    def test_detached_search_holds_no_metric_objects(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.1)
        search = engine.prepare(tiny_query, SearchConfig())
        assert search.metrics is None
        assert search._mc_estimates is None


# --- the auditor ----------------------------------------------------------------


def _consistent_snapshot() -> dict:
    return {
        "counters": {
            "dm.cell_requests": 10.0,
            "dm.cache_hit_cells": 6.0,
            "dm.cache_miss_cells": 4.0,
            "dm.cells_read": 5.0,
            "search.reads": 3.0,
            "search.cold_reads": 2.0,
            "search.prefetch_reads": 1.0,
            "prefetch.positive_reads": 1.0,
            "prefetch.negative_reads": 2.0,
        },
        "gauges": {},
        "histograms": {},
    }


class TestInvariantAuditor:
    def test_consistent_snapshot_passes(self):
        report = InvariantAuditor(_consistent_snapshot()).report()
        assert report["ok"]
        assert report["checked"] >= 4

    def test_violation_detected_and_raised(self):
        snapshot = _consistent_snapshot()
        snapshot["counters"]["dm.cache_hit_cells"] = 7.0  # breaks the identity
        audit = InvariantAuditor(snapshot)
        assert any("cache accounting" in v for v in audit.violations())
        with pytest.raises(InvariantViolation):
            audit.verify()

    def test_absent_families_are_skipped(self):
        audit = InvariantAuditor({"counters": {}, "gauges": {}, "histograms": {}})
        assert audit.report() == {"checked": 0, "violations": [], "ok": True}

    def test_accepts_registry_directly(self):
        reg = MetricsRegistry()
        reg.inc("search.reads", 2.0)
        reg.inc("search.cold_reads", 2.0)
        reg.inc("prefetch.positive_reads", 1.0)
        reg.inc("prefetch.negative_reads", 1.0)
        assert InvariantAuditor(reg).report()["ok"]

    def test_histogram_conservation_checked(self):
        snapshot = {
            "counters": {"dm.reads": 2.0},
            "gauges": {},
            "histograms": {
                "dm.cells_per_read": {
                    "bounds": [1.0, 2.0],
                    "counts": [0, 1, 0],
                    "total": 2.0,
                }
            },
        }
        audit = InvariantAuditor(snapshot)
        assert any("histogram conservation" in v for v in audit.violations())
