"""End-to-end tests in one and three dimensions.

The model is n-dimensional throughout (Section 2); the paper's
experiments are 1-D/2-D, so these tests guard the general code paths:
3-D windows, neighbors in six directions, Morton-order placement,
inclusion–exclusion box sums, and 3-D prefetch extension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    Grid,
    Rect,
    SearchConfig,
    SWEngine,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    Window,
    col,
    enumerate_windows,
)
from repro.dbms import run_sql_baseline
from repro.storage import Database, HeapTable, TableSchema
from repro.storage.placement import cell_flat_ids, order_rows


@pytest.fixture(scope="module")
def cube_db():
    """A 6x6x6 grid with a hot 2x2x2 sub-cube of high values."""
    rng = np.random.default_rng(71)
    n = 4000
    x, y, z = (rng.uniform(0, 6, n) for _ in range(3))
    v = np.full(n, 10.0)
    hot = (x >= 2) & (x < 4) & (y >= 2) & (y < 4) & (z >= 2) & (z < 4)
    v[hot] = 90.0
    v += rng.normal(0, 1, n)
    schema = TableSchema(["x", "y", "z", "v"], ["x", "y", "z"])
    columns = {"x": x, "y": y, "z": z, "v": v}
    perm = order_rows(
        "hilbert",  # 3-D: falls back to Morton order
        np.column_stack([x, y, z]),
    )
    table = HeapTable("cube", schema, {k: c[perm] for k, c in columns.items()}, 8)
    db = Database()
    db.register(table)
    return db


@pytest.fixture(scope="module")
def cube_query():
    return SWQuery.build(
        dimensions=("x", "y", "z"),
        area=[(0.0, 6.0)] * 3,
        steps=(1.0, 1.0, 1.0),
        conditions=[
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 8),
            ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 60.0),
        ],
    )


def brute_force_3d(db, query):
    table = db.table("cube")
    grid = query.grid
    flat = cell_flat_ids(table.coordinates(), grid)
    counts = np.bincount(flat, minlength=grid.num_cells).reshape(grid.shape)
    sums = np.bincount(
        flat, weights=table.column("v"), minlength=grid.num_cells
    ).reshape(grid.shape)
    out = set()
    for w in enumerate_windows(grid, max_lengths=(8, 8, 8)):
        if w.cardinality > 8:
            continue
        box = tuple(slice(l, u) for l, u in zip(w.lo, w.hi))
        c = counts[box].sum()
        if c > 0 and sums[box].sum() / c > 60.0:
            out.add(w)
    return out


class Test3D:
    def test_window_neighbors_in_six_directions(self):
        grid = Grid(Rect.from_bounds([(0.0, 6.0)] * 3), (1.0, 1.0, 1.0))
        w = Window((2, 2, 2), (3, 3, 3))
        assert len(list(w.neighbors(grid))) == 6

    def test_engine_matches_brute_force(self, cube_db, cube_query):
        engine = SWEngine(cube_db, "cube", sample_fraction=0.3)
        run = engine.execute(cube_query, SearchConfig(alpha=0.5)).run
        expected = brute_force_3d(cube_db, cube_query)
        assert {r.window for r in run.results} == expected
        assert run.num_results > 0

    def test_results_inside_hot_cube(self, cube_db, cube_query):
        engine = SWEngine(cube_db, "cube", sample_fraction=0.3)
        run = engine.execute(cube_query).run
        hot = Window((2, 2, 2), (4, 4, 4))
        for r in run.results:
            assert r.window.overlaps(hot)

    def test_baseline_agrees(self, cube_db, cube_query):
        baseline = run_sql_baseline(cube_db, "cube", cube_query)
        expected = brute_force_3d(cube_db, cube_query)
        assert {r.window for r in baseline.results} == expected

    def test_3d_prefetch_stays_exact(self, cube_db, cube_query):
        engine = SWEngine(cube_db, "cube", sample_fraction=0.3)
        run = engine.execute(cube_query, SearchConfig(alpha=2.0)).run
        assert {r.window for r in run.results} == brute_force_3d(cube_db, cube_query)


class Test1DStockLike:
    def test_min_max_aggregate_query(self):
        rng = np.random.default_rng(72)
        n = 500
        t = np.sort(rng.uniform(0, 50, n))
        v = np.sin(t / 4.0) * 10 + 20 + rng.normal(0, 0.2, n)
        schema = TableSchema(["t", "v"], ["t"])
        db = Database()
        db.register(HeapTable("wave", schema, {"t": t, "v": v}, 8))
        query = SWQuery.build(
            dimensions=("t",),
            area=[(0.0, 50.0)],
            steps=(2.0,),
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.LE, 3),
                ContentCondition(ContentObjective.of("min", col("v")), ComparisonOp.GT, 25.0),
            ],
        )
        run = SWEngine(db, "wave", sample_fraction=0.5).execute(query).run
        # Verify exactly against the data.
        for r in run.results:
            lo, hi = r.bounds[0].lo, r.bounds[0].hi
            mask = (t >= lo) & (t < hi)
            assert v[mask].min() > 25.0
        # And completeness for single-cell windows.
        for cell_start in np.arange(0, 50, 2.0):
            mask = (t >= cell_start) & (t < cell_start + 2.0)
            if mask.any() and v[mask].min() > 25.0:
                assert any(
                    r.bounds[0].lo <= cell_start < r.bounds[0].hi for r in run.results
                )
