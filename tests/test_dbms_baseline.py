"""Unit tests for the complex-SQL baseline and its window enumerator."""

from __future__ import annotations


import pytest

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SWEngine,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.dbms import run_sql_baseline
from repro.dbms.executor import _box_sum, _prefix
from repro.core.window import Window
import numpy as np


class TestPrefixSums:
    def test_prefix_box_sum_2d(self):
        values = np.arange(12, dtype=float).reshape(3, 4)
        prefix = _prefix(values)
        w = Window((1, 1), (3, 3))
        assert _box_sum(prefix, w) == values[1:3, 1:3].sum()

    def test_prefix_box_sum_full(self):
        values = np.arange(6, dtype=float).reshape(2, 3)
        prefix = _prefix(values)
        assert _box_sum(prefix, Window((0, 0), (2, 3))) == values.sum()

    def test_prefix_box_sum_1d(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        prefix = _prefix(values)
        assert _box_sum(prefix, Window((1,), (3,))) == 5.0


class TestBaseline:
    def test_matches_sw_engine(self, tiny_dataset, tiny_query, tiny_db):
        baseline = run_sql_baseline(tiny_db, tiny_dataset.name, tiny_query)
        from repro.workloads import make_database

        db2 = make_database(tiny_dataset, "cluster")
        engine_run = SWEngine(db2, tiny_dataset.name, sample_fraction=0.3).execute(tiny_query)
        assert {r.window for r in baseline.results} == {
            r.window for r in engine_run.run.results
        }

    def test_blocking_output(self, tiny_dataset, tiny_query, tiny_db):
        baseline = run_sql_baseline(tiny_db, tiny_dataset.name, tiny_query)
        assert baseline.num_results > 0
        assert all(r.time == baseline.total_time_s for r in baseline.results)

    def test_time_decomposition(self, tiny_dataset, tiny_query, tiny_db):
        baseline = run_sql_baseline(tiny_db, tiny_dataset.name, tiny_query)
        assert baseline.io_time_s > 0
        assert baseline.cpu_time_s > 0
        assert baseline.total_time_s == pytest.approx(
            baseline.io_time_s + baseline.cpu_time_s, rel=0.05
        )

    def test_single_sequential_read(self, tiny_dataset, tiny_query, tiny_db):
        run_sql_baseline(tiny_db, tiny_dataset.name, tiny_query)
        disk = tiny_db.disk(tiny_dataset.name)
        assert disk.seeks == 1
        assert disk.blocks_read == disk.num_blocks

    def test_enumeration_respects_shape_bounds(self, tiny_dataset, tiny_query, tiny_db):
        baseline = run_sql_baseline(tiny_db, tiny_dataset.name, tiny_query)
        grid = tiny_query.grid
        # All card<10 shapes: count enumerated windows is far below the
        # unbounded window count.
        from repro.core import enumerate_windows

        unbounded = sum(1 for _ in enumerate_windows(grid))
        assert 0 < baseline.windows_enumerated < unbounded

    def test_objective_values_exact(self, tiny_dataset, tiny_query, tiny_db):
        baseline = run_sql_baseline(tiny_db, tiny_dataset.name, tiny_query)
        for result in baseline.results:
            assert 20.0 < result.objective_values["avg(value)"] < 30.0

    def test_min_max_aggregates_supported(self, tiny_dataset, tiny_db):
        grid = tiny_dataset.grid
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
            steps=grid.steps,
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4),
                ContentCondition(ContentObjective.of("max", col("value")), ComparisonOp.LT, 30.0),
                ContentCondition(ContentObjective.of("min", col("value")), ComparisonOp.GT, 15.0),
            ],
        )
        baseline = run_sql_baseline(tiny_db, tiny_dataset.name, query)
        for result in baseline.results:
            assert result.objective_values["max(value)"] < 30.0
            assert result.objective_values["min(value)"] > 15.0


class TestPushdownAblation:
    def test_naive_enumeration_agrees_and_costs_more(self, tiny_dataset, tiny_query):
        from repro.workloads import make_database

        db1 = make_database(tiny_dataset, "cluster")
        pushed = run_sql_baseline(db1, tiny_dataset.name, tiny_query)
        db2 = make_database(tiny_dataset, "cluster")
        naive = run_sql_baseline(db2, tiny_dataset.name, tiny_query, pushdown=False)
        assert {r.window for r in pushed.results} == {r.window for r in naive.results}
        assert naive.windows_enumerated > 2 * pushed.windows_enumerated
        assert naive.cpu_time_s > pushed.cpu_time_s
