"""Cross-cutting property-based tests (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Grid, PrefetchState, PrefetchStrategy, Rect, Window, prefetch_extend
from repro.distributed import plan_partitions
from repro.sql import parse_query
from repro.sql.errors import SqlError


# --- SQL fuzzing ---------------------------------------------------------------

identifiers = st.sampled_from(["ra", "dec", "x", "y", "price", "v_1"])
aggregates = st.sampled_from(["AVG", "SUM", "MIN", "MAX"])
ops = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])
numbers = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False).map(
    lambda v: f"{v:.3f}"
)


@st.composite
def generated_queries(draw):
    """Structurally valid SW SQL with randomized pieces."""
    dims = draw(st.lists(identifiers, min_size=1, max_size=3, unique=True))
    table = draw(identifiers)
    grid_parts = []
    for dim in dims:
        lo = draw(st.floats(min_value=-100, max_value=100, allow_nan=False))
        width = draw(st.floats(min_value=1, max_value=100, allow_nan=False))
        step = draw(st.floats(min_value=0.1, max_value=10, allow_nan=False))
        grid_parts.append(f"{dim} BETWEEN {lo:.3f} AND {lo + width:.3f} STEP {step:.3f}")
    having_parts = [f"CARD() {draw(ops)} {draw(numbers)}"]
    attr = draw(identifiers)
    having_parts.append(f"{draw(aggregates)}({attr}) {draw(ops)} {draw(numbers)}")
    select = ", ".join(f"LB({d})" for d in dims) + ", CARD()"
    return (
        f"SELECT {select} FROM {table} GRID BY "
        + ", ".join(grid_parts)
        + " HAVING "
        + " AND ".join(having_parts)
    ), dims, table


class TestSqlFuzz:
    @settings(max_examples=60, deadline=None)
    @given(generated_queries())
    def test_generated_queries_parse(self, item):
        sql, dims, table = item
        parsed = parse_query(sql)
        assert parsed.table == table
        assert [g.name for g in parsed.grid] == dims
        assert len(parsed.having) == 2

    @settings(max_examples=60, deadline=None)
    @given(st.text(min_size=0, max_size=60))
    def test_arbitrary_text_never_crashes_unexpectedly(self, text):
        """The parser either succeeds or raises a typed SqlError."""
        try:
            parse_query(text)
        except SqlError:
            pass


# --- prefetch invariants ----------------------------------------------------------


@st.composite
def grids_and_windows(draw):
    nx = draw(st.integers(4, 20))
    ny = draw(st.integers(4, 20))
    grid = Grid(Rect.from_bounds([(0.0, float(nx)), (0.0, float(ny))]), (1.0, 1.0))
    lx = draw(st.integers(0, nx - 1))
    ly = draw(st.integers(0, ny - 1))
    hx = draw(st.integers(lx + 1, nx))
    hy = draw(st.integers(ly + 1, ny))
    return grid, Window((lx, ly), (hx, hy))


class TestPrefetchProperties:
    @settings(max_examples=60, deadline=None)
    @given(grids_and_windows(), st.floats(0.0, 10.0))
    def test_extension_invariants(self, gw, p):
        grid, window = gw
        extended = prefetch_extend(window, p, grid, cost_fn=lambda w: float(w.cardinality))
        # Contains the original, stays in the grid.
        assert extended.contains_window(window)
        assert all(l >= 0 for l in extended.lo)
        assert all(h <= s for h, s in zip(extended.hi, grid.shape))

    @settings(max_examples=40, deadline=None)
    @given(grids_and_windows(), st.floats(0.0, 5.0), st.floats(0.0, 5.0))
    def test_monotone_in_budget(self, gw, p1, p2):
        grid, window = gw
        lo, hi = sorted((p1, p2))
        cost = lambda w: float(w.cardinality)
        small = prefetch_extend(window, lo, grid, cost)
        large = prefetch_extend(window, hi, grid, cost)
        assert large.cardinality >= small.cardinality

    @given(
        st.floats(0.0, 3.0),
        st.lists(st.booleans(), min_size=0, max_size=20),
    )
    def test_dynamic_size_reset_semantics(self, alpha, outcomes):
        state = PrefetchState(alpha=alpha, strategy=PrefetchStrategy.DYNAMIC)
        streak = 0
        for positive in outcomes:
            state.record_read(positive)
            streak = 0 if positive else streak + 1
            assert state.fp_reads == streak
            if alpha > 0:
                expected = (1 + alpha) ** (alpha + streak) - 1
                assert state.size() == pytest.approx(expected)
            else:
                assert state.size() == 0.0


# --- partition-plan invariants -------------------------------------------------------


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(8, 64),
        st.integers(1, 8),
        st.floats(0.0, 0.8),
    )
    def test_boundaries_partition_the_grid(self, size0, workers, skew):
        if workers > size0:
            workers = size0
        grid = Grid(Rect.from_bounds([(0.0, float(size0)), (0.0, 4.0)]), (1.0, 1.0))
        plan = plan_partitions(grid, workers, skew=skew)
        # Strictly increasing boundaries covering [0, size0].
        assert plan.boundaries[0] == 0
        assert plan.boundaries[-1] == size0
        assert all(a < b for a, b in zip(plan.boundaries, plan.boundaries[1:]))
        # Every cell column has exactly one owner.
        owners = [plan.owner_of_cell(i) for i in range(size0)]
        assert owners == sorted(owners)
        assert set(owners) == set(range(workers))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(8, 40), st.integers(2, 4), st.integers(2, 10))
    def test_full_overlap_covers_window_reach(self, size0, workers, max_len):
        grid = Grid(Rect.from_bounds([(0.0, float(size0)), (0.0, 4.0)]), (1.0, 1.0))
        plan = plan_partitions(
            grid, workers, overlap="full_overlap", max_window_length_dim0=max_len
        )
        for worker in range(workers):
            a_lo, a_hi = plan.anchor_slab(worker)
            d_lo, d_hi = plan.data_range(worker)
            # Every window anchored in the slab fits in the local data.
            furthest = min(a_hi - 1 + max_len, size0)
            assert d_lo <= a_lo
            assert d_hi >= furthest

    @settings(max_examples=40, deadline=None)
    @given(st.integers(16, 64), st.integers(2, 6))
    def test_weighted_balancing_bounds_imbalance(self, size0, workers):
        rng = np.random.default_rng(size0 * 31 + workers)
        grid = Grid(Rect.from_bounds([(0.0, float(size0)), (0.0, 2.0)]), (1.0, 1.0))
        weights = rng.uniform(1, 10, grid.shape)
        plan = plan_partitions(grid, workers, cell_weights=weights)
        col_weights = weights.sum(axis=1)
        loads = [
            col_weights[plan.boundaries[i] : plan.boundaries[i + 1]].sum()
            for i in range(workers)
        ]
        # No worker holds more than the ideal share plus one column's worth
        # of slack per boundary (cell-aligned splits cannot do better).
        ideal = col_weights.sum() / workers
        assert max(loads) <= ideal + 2 * col_weights.max()


# --- metrics registry algebra ---------------------------------------------------

metric_names = st.sampled_from(
    ["dm.reads", "search.results", "net.messages_sent", "buffer.hit_blocks"]
)
# Integer-valued amounts: what counters carry in practice, and exactly
# representable so merge associativity is bit-exact (float addition is
# only associative up to rounding for arbitrary reals).
finite = st.integers(min_value=0, max_value=2**40).map(float)


@st.composite
def registries(draw):
    """A registry with random counters, gauges, histogram observations."""
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    for name in draw(st.lists(metric_names, max_size=4, unique=True)):
        reg.inc(name, draw(finite))
    for name in draw(st.lists(st.sampled_from(["g.depth", "g.streak"]), max_size=2, unique=True)):
        reg.gauge(name).set(draw(finite))
    for value in draw(st.lists(st.integers(0, 5000).map(float), max_size=8)):
        reg.histogram("h.cells").observe(value)
    return reg


def _merged(*regs):
    from repro.obs import MetricsRegistry

    out = MetricsRegistry()
    for reg in regs:
        out.merge(reg)
    return out


class TestMetricsAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(registries(), registries())
    def test_merge_commutative(self, a, b):
        assert _merged(a, b).snapshot() == _merged(b, a).snapshot()

    @settings(max_examples=60, deadline=None)
    @given(registries(), registries(), registries())
    def test_merge_associative(self, a, b, c):
        left = _merged(_merged(a, b), c).snapshot()
        right = _merged(a, _merged(b, c)).snapshot()
        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(registries(), registries())
    def test_histogram_counts_conserved_under_merge(self, a, b):
        merged = _merged(a, b).snapshot()["histograms"]
        for name in merged:
            want_counts = sum(
                sum(reg.snapshot()["histograms"].get(name, {"counts": []})["counts"])
                for reg in (a, b)
            )
            want_total = sum(
                reg.snapshot()["histograms"].get(name, {"total": 0.0})["total"]
                for reg in (a, b)
            )
            assert sum(merged[name]["counts"]) == want_counts
            assert merged[name]["total"] == pytest.approx(want_total)

    @settings(max_examples=60, deadline=None)
    @given(registries())
    def test_snapshot_round_trips_through_json(self, reg):
        import json

        from repro.io import metrics_to_json
        from repro.obs import MetricsRegistry

        snapshot = reg.snapshot()
        decoded = json.loads(metrics_to_json(reg))
        rebuilt = MetricsRegistry.from_snapshot(decoded)
        assert rebuilt.snapshot() == snapshot
        assert metrics_to_json(rebuilt) == metrics_to_json(snapshot)
