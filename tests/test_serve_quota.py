"""Tenant quotas, weighted fair share, and tenant isolation.

The multi-tenant contract under test (DESIGN.md §17):

* over-quota submissions bounce deterministically as ``THROTTLED`` with
  a machine-checkable reason, and the ``serve.quota.*`` counters satisfy
  the auditor's identities;
* cumulative step/block quotas are enforced *in flight* by clamping each
  session's own budget to the tenant's remaining allowance;
* a noisy tenant cannot change another tenant's results — the victim's
  observables are byte-identical to a solo run;
* :class:`WeightedFairPolicy` delivers slices in proportion to tier
  weights and never starves a runnable tenant.
"""

from __future__ import annotations

import json

import pytest

from repro.core import SearchConfig
from repro.core.trace import EventKind, SearchTrace
from repro.errors import ConfigError
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.serve import (
    THROTTLE_REASONS,
    TIER_WEIGHTS,
    QuotaLedger,
    ServeConfig,
    ServeCore,
    SessionManager,
    TenantQuota,
    WeightedFairPolicy,
    parse_quota_specs,
    serve_workload,
)
from repro.workloads import synthetic_dataset, synthetic_query

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def workload():
    dataset = synthetic_dataset("low", scale=0.12, seed=5)
    return dataset, synthetic_query(dataset)


class TestTenantQuota:
    def test_defaults_are_unlimited_standard(self):
        quota = TenantQuota()
        assert quota.max_sessions is None and quota.tier == "standard"
        assert quota.share_weight == TIER_WEIGHTS["standard"]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_sessions": 0},
            {"step_budget": 0},
            {"block_budget": -1},
            {"tier": "platinum"},
            {"weight": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            TenantQuota(**kwargs)

    def test_explicit_weight_beats_tier(self):
        assert TenantQuota(tier="free", weight=9.0).share_weight == 9.0

    def test_json_round_trip(self):
        quota = TenantQuota(max_sessions=2, step_budget=100, tier="premium")
        assert TenantQuota.from_json(quota.to_json()) == quota
        with pytest.raises(ConfigError, match="unknown quota fields"):
            TenantQuota.from_json({"surprise": 1})

    def test_parse_quota_specs(self):
        quotas = parse_quota_specs(["a=premium", "b=free:2", "c=standard:4:500"])
        assert quotas["a"].tier == "premium"
        assert quotas["b"].max_sessions == 2
        assert quotas["c"].step_budget == 500
        with pytest.raises(ConfigError):
            parse_quota_specs(["missing-equals"])
        with pytest.raises(ConfigError):
            parse_quota_specs(["a=free:two"])


class TestQuotaLedger:
    def test_check_submit_reasons(self):
        ledger = QuotaLedger(
            {"t": TenantQuota(max_sessions=1, step_budget=10, block_budget=5)}
        )
        assert ledger.check_submit("t") is None
        ledger.note_admitted("t")
        assert ledger.check_submit("t") == "tenant_sessions"
        ledger.note_finished("t")
        ledger.charge("t", steps=10)
        assert ledger.check_submit("t") == "tenant_steps"
        ledger = QuotaLedger({"t": TenantQuota(block_budget=5)})
        ledger.charge("t", blocks=5)
        assert ledger.check_submit("t") == "tenant_blocks"
        assert set(THROTTLE_REASONS) == {
            "tenant_sessions", "tenant_steps", "tenant_blocks",
        }

    def test_clamp_budgets_to_remaining_allowance(self):
        ledger = QuotaLedger({"t": TenantQuota(step_budget=100, block_budget=50)})
        ledger.charge("t", steps=90, blocks=45)
        assert ledger.clamp_budgets("t", None, None) == (10, 5)
        assert ledger.clamp_budgets("t", 3, 99) == (3, 5)
        # Unquota'd tenants keep whatever the session asked for.
        assert ledger.clamp_budgets("other", None, 7) == (None, 7)

    def test_report_covers_known_tenants(self):
        ledger = QuotaLedger({"a": TenantQuota()})
        ledger.charge("b", steps=3)
        report = ledger.report()
        assert set(report) == {"a", "b"}
        assert report["b"]["steps"] == 3


class TestManagerThrottling:
    def test_throttled_stub_and_observability(self, workload):
        dataset, query = workload
        registry = MetricsRegistry()
        trace = SearchTrace()
        manager = SessionManager(
            max_live=2,
            queue_limit=2,
            metrics=registry,
            trace=trace,
            quotas={"bob": TenantQuota(max_sessions=1)},
        )
        first = manager.submit("b1", dataset, query, tenant="bob")
        assert first.state.value == "live"
        second = manager.submit("b2", dataset, query, tenant="bob")
        assert second.state.value == "throttled"
        assert second.throttle_reason == "tenant_sessions"
        assert second.finished and second.results == []

        counters = registry.snapshot()["counters"]
        assert counters["serve.quota.checks"] == 2
        assert counters["serve.quota.granted"] == 1
        assert counters["serve.quota.denied"] == 1
        assert counters["serve.sessions_throttled"] == 1
        quota_events = trace.events(EventKind.QUOTA)
        assert len(quota_events) == 1
        assert quota_events[0].detail["tenant"] == "bob"
        assert quota_events[0].detail["reason"] == "tenant_sessions"
        serve_workload(manager)
        InvariantAuditor(registry).verify()

    def test_sessions_quota_frees_on_completion(self, workload):
        dataset, query = workload
        manager = SessionManager(quotas={"bob": TenantQuota(max_sessions=1)})
        manager.submit(
            "b1", dataset, query, SearchConfig(alpha=1.0), step_budget=10,
            tenant="bob",
        )
        serve_workload(manager)
        again = manager.submit("b2", dataset, query, tenant="bob")
        assert again.state.value in ("live", "waiting")

    def test_cumulative_step_quota_enforced_in_flight(self, workload):
        dataset, query = workload
        manager = SessionManager(quotas={"bob": TenantQuota(step_budget=25)})
        session = manager.submit("b1", dataset, query, tenant="bob")
        # The session's own budget was clamped to the tenant allowance.
        assert session.step_budget == 25
        serve_workload(manager)
        assert session.run.interrupted
        assert session.run.interrupt_reason == "step_budget"
        assert manager.ledger.usage("bob")["steps"] == 25
        follow_up = manager.submit("b2", dataset, query, tenant="bob")
        assert follow_up.state.value == "throttled"
        assert follow_up.throttle_reason == "tenant_steps"

    def test_throttling_is_deterministic(self, workload):
        dataset, query = workload

        def run() -> list[tuple[str, str | None]]:
            manager = SessionManager(
                max_live=2,
                quotas={"bob": TenantQuota(max_sessions=1, step_budget=30)},
            )
            outcomes = []
            for i in range(4):
                handle = manager.submit(
                    f"s{i}", dataset, query, step_budget=20, tenant="bob"
                )
                outcomes.append((handle.state.value, handle.throttle_reason))
                serve_workload(manager)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert ("throttled", "tenant_sessions") not in first  # serialized, so
        assert any(reason == "tenant_steps" for _state, reason in first)


class _FakeSession:
    def __init__(self, name: str, tenant: str) -> None:
        self.name = name
        self.tenant = tenant
        self.slices_taken = 0


class TestWeightedFairPolicy:
    def test_slice_ratio_tracks_weights(self):
        policy = WeightedFairPolicy({"free": 1.0, "prem": 16.0})
        live = [_FakeSession("f1", "free"), _FakeSession("p1", "prem")]
        for session in live:
            policy.on_admit(session)
        counts = {"free": 0, "prem": 0}
        for _ in range(170):
            chosen = policy.pick(live)
            chosen.slices_taken += 1
            counts[chosen.tenant] += 1
        assert counts["prem"] / counts["free"] == pytest.approx(16.0, rel=0.15)

    def test_no_runnable_tenant_is_starved(self):
        policy = WeightedFairPolicy({"a": 1.0, "b": 100.0})
        live = [_FakeSession("a1", "a"), _FakeSession("b1", "b")]
        counts = {"a": 0, "b": 0}
        for _ in range(505):
            chosen = policy.pick(live)
            chosen.slices_taken += 1
            counts[chosen.tenant] += 1
        assert counts["a"] >= 5  # ~1 in 101 slices, never zero

    def test_late_joiner_gets_no_back_credit(self):
        policy = WeightedFairPolicy({"a": 1.0, "b": 1.0})
        first = [_FakeSession("a1", "a")]
        policy.on_admit(first[0])
        for _ in range(50):
            policy.pick(first).slices_taken += 1
        joiner = _FakeSession("b1", "b")
        policy.on_admit(joiner)
        live = first + [joiner]
        counts = {"a": 0, "b": 0}
        for _ in range(40):
            chosen = policy.pick(live)
            chosen.slices_taken += 1
            counts[chosen.tenant] += 1
        # Equal weights from the join point: the newcomer gets ~half,
        # not a 50-slice catch-up burst.
        assert 15 <= counts["b"] <= 25

    def test_within_tenant_round_robin(self):
        policy = WeightedFairPolicy()
        live = [_FakeSession("s1", "t"), _FakeSession("s2", "t")]
        picks = []
        for _ in range(4):
            chosen = policy.pick(live)
            chosen.slices_taken += 1
            picks.append(chosen.name)
        assert picks == ["s1", "s2", "s1", "s2"]

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            WeightedFairPolicy({"t": 0.0})


def _session_bytes(core: ServeCore, name: str) -> bytes:
    entry = core.fingerprint_payload()["sessions"][name]
    return json.dumps(entry, sort_keys=True).encode()


class TestTenantIsolation:
    def test_noisy_tenant_cannot_change_victims_results(self):
        """The acceptance gate: victim observables byte-identical to solo.

        Cache off so the *only* possible cross-session channel is the
        scheduler itself — which may reorder but never alter a session's
        computation (private database, private clock).
        """
        victim_spec = {
            "session": "victim", "workload": "synth-low", "tenant": "quiet",
            "scale": 0.12, "step_budget": 35,
        }

        def solo() -> bytes:
            core = ServeCore(ServeConfig(max_live=4, use_cache=False, policy="wfq"))
            core.submit(dict(victim_spec))
            while core.pending():
                core.tick()
            return _session_bytes(core, "victim")

        def under_noise() -> bytes:
            core = ServeCore(
                ServeConfig(
                    max_live=4,
                    queue_limit=8,
                    use_cache=False,
                    policy="wfq",
                    quotas={
                        "noisy": TenantQuota(tier="premium"),
                        "quiet": TenantQuota(tier="free"),
                    },
                )
            )
            core.submit(dict(victim_spec))
            for i in range(3):
                core.submit({
                    "session": f"noise-{i}", "workload": "synth-medium",
                    "tenant": "noisy", "scale": 0.12, "seed": 11 + i,
                    "step_budget": 60,
                })
            while core.pending():
                core.tick()
            return _session_bytes(core, "victim")

        assert solo() == under_noise()

    def test_over_quota_tenant_outcomes_are_deterministic(self):
        def run() -> bytes:
            core = ServeCore(
                ServeConfig(
                    max_live=2,
                    use_cache=False,
                    quotas={"bob": TenantQuota(max_sessions=1)},
                )
            )
            for i in range(3):
                core.submit({
                    "session": f"b{i}", "workload": "synth-low",
                    "tenant": "bob", "scale": 0.12, "step_budget": 15,
                })
            while core.pending():
                core.tick()
            return json.dumps(core.fingerprint_payload(), sort_keys=True).encode()

        first, second = run(), run()
        assert first == second
        payload = json.loads(first)
        states = {n: s["state"] for n, s in payload["sessions"].items()}
        assert states == {"b0": "done", "b1": "throttled", "b2": "throttled"}
