"""Tests for the workload generators (ground truth and query alignment)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SWEngine, SearchConfig
from repro.workloads import (
    SDSS_QUERIES,
    make_database,
    make_table,
    sdss_dataset,
    sdss_query,
    stock_dataset,
    stock_query,
    synthetic_dataset,
    synthetic_query,
)


class TestSyntheticDataset:
    def test_structure(self):
        ds = synthetic_dataset("high", scale=0.2, seed=1)
        assert ds.grid.shape == (20, 20)
        assert len(ds.clusters) == 8
        assert sum(ds.meta["is_target"]) == 4
        assert set(ds.columns) == {"x", "y", "value"}

    def test_every_cell_populated(self):
        ds = synthetic_dataset("high", scale=0.2, seed=2)
        from repro.storage.placement import cell_flat_ids

        flats = cell_flat_ids(ds.coordinates(), ds.grid)
        assert np.all(flats >= 0)
        assert len(np.unique(flats)) == ds.grid.num_cells

    def test_target_clusters_have_target_values(self):
        ds = synthetic_dataset("high", scale=0.2, seed=3)
        from repro.storage.placement import cell_flat_ids

        flats = cell_flat_ids(ds.coordinates(), ds.grid)
        values = ds.columns["value"]
        for window, is_target in zip(ds.clusters, ds.meta["is_target"]):
            cells = {ds.grid.flat_id(c) for c in window.iter_cells()}
            in_cluster = np.isin(flats, list(cells))
            mean = values[in_cluster].mean()
            if is_target:
                assert 20 < mean < 30
            else:
                assert not 20 < mean < 30

    def test_spread_orders_distances(self):
        def spread_of(name):
            ds = synthetic_dataset(name, scale=0.3, seed=4)
            targets = [w for w, t in zip(ds.clusters, ds.meta["is_target"]) if t]
            rects = [w.rect(ds.grid) for w in targets]
            return max(
                rects[i].min_distance(rects[j])
                for i in range(len(rects))
                for j in range(i + 1, len(rects))
            )

        assert spread_of("low") < spread_of("medium") < spread_of("high")

    def test_query_finds_all_target_clusters(self):
        ds = synthetic_dataset("high", scale=0.25, seed=5)
        db = make_database(ds, "cluster")
        run = SWEngine(db, ds.name, sample_fraction=0.3).execute(synthetic_query(ds)).run
        assert run.num_results > 0
        targets = [w for w, t in zip(ds.clusters, ds.meta["is_target"]) if t]
        for target in targets:
            assert any(r.window.overlaps(target) for r in run.results), (
                f"no result near planted cluster {target}"
            )
        # And no result far away from every target.
        for r in run.results:
            assert any(r.window.overlaps(t) for t in targets)

    def test_invalid_spread(self):
        with pytest.raises(ValueError, match="spread"):
            synthetic_dataset("extreme")

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            synthetic_dataset("high", scale=0.0)

    def test_deterministic(self):
        a = synthetic_dataset("low", scale=0.2, seed=7)
        b = synthetic_dataset("low", scale=0.2, seed=7)
        np.testing.assert_array_equal(a.columns["value"], b.columns["value"])


class TestSdssDataset:
    @pytest.fixture(scope="class")
    def sdss(self):
        return sdss_dataset(scale=0.15, seed=8)

    def test_structure(self, sdss):
        assert set(sdss.columns) == {"ra", "dec", "rowv", "colv", "brightness"}
        assert len(sdss.clusters) == 15  # 3 spreads x 4 + 3 decoys
        assert sdss.grid.area.lower == (113.0, 8.0)
        assert len(sdss.meta["bright_regions"]) == 3

    def test_cluster_speeds_planted(self, sdss):
        from repro.storage.placement import cell_flat_ids

        flats = cell_flat_ids(sdss.coordinates(), sdss.grid)
        speed = np.sqrt(sdss.columns["rowv"] ** 2 + sdss.columns["colv"] ** 2)
        for window, v0, cls in zip(
            sdss.clusters, sdss.meta["cluster_speeds"], sdss.meta["cluster_class"]
        ):
            cells = {sdss.grid.flat_id(c) for c in window.iter_cells()}
            members = np.isin(flats, list(cells))
            assert abs(speed[members].mean() - v0) < 1.0

    @pytest.mark.parametrize("spread", ["high", "medium", "low"])
    def test_queries_have_results_near_their_clusters(self, sdss, spread):
        db = make_database(sdss, "cluster")
        run = SWEngine(db, sdss.name, sample_fraction=0.3).execute(
            sdss_query(sdss, spread), SearchConfig(alpha=1.0)
        ).run
        assert run.num_results > 0
        spec = SDSS_QUERIES[spread]
        # A window can only average into the interval if it contains cells
        # of a cluster at least as fast as the interval's lower bound
        # (background + slower clusters cannot reach it).  With the
        # paper's adjacent intervals — (95,96) next to (100,101) — windows
        # mixing a faster cluster with background are legitimate exact
        # results, so "near its clusters" means "near a fast-enough one".
        eligible = [
            w
            for w, speed in zip(sdss.clusters, sdss.meta["cluster_speeds"])
            if speed > spec.speed_lo
        ]
        my_clusters = [
            w
            for w, cls in zip(sdss.clusters, sdss.meta["cluster_class"])
            if cls == spread
        ]
        own_hits = 0
        for r in run.results:
            assert spec.card_lo < r.window.cardinality < spec.card_hi
            assert any(r.window.overlaps(c) for c in eligible)
            if any(r.window.overlaps(c) for c in my_clusters):
                own_hits += 1
        # The bulk of the results still sits on the query's own clusters.
        assert own_hits >= run.num_results * 0.2
        for target in my_clusters:
            assert any(r.window.overlaps(target) for r in run.results)

    def test_invalid_spread(self, sdss):
        with pytest.raises(ValueError, match="spread"):
            sdss_query(sdss, "extreme")


class TestStockDataset:
    def test_structure(self):
        ds = stock_dataset(years=8, bull_years=(2, 5))
        assert ds.grid.ndim == 1
        assert ds.grid.shape == (8,)
        assert len(ds.clusters) == 2

    def test_bull_years_above_threshold(self):
        ds = stock_dataset(years=8, bull_years=(2, 5), seed=9)
        time = ds.columns["time"]
        price = ds.columns["price"]
        year = (time / 365.0).astype(int)
        assert price[year == 2].mean() > 55
        assert price[year == 0].mean() < 45

    def test_query_results_cover_bull_years(self):
        ds = stock_dataset(years=10, bull_years=(3, 7), seed=10)
        db = make_database(ds, "cluster")
        run = SWEngine(db, ds.name, sample_fraction=0.3).execute(stock_query(ds)).run
        assert run.num_results > 0
        for r in run.results:
            assert 1 <= r.window.length(0) <= 3
            assert r.objective_values["avg(price)"] > 50.0
        covered_years = {c for r in run.results for c in r.window.iter_cells()}
        assert (3,) in covered_years
        assert (7,) in covered_years

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 4 years"):
            stock_dataset(years=2)
        with pytest.raises(ValueError, match="bull year"):
            stock_dataset(years=8, bull_years=(9,))


class TestTableBuilding:
    def test_make_table_applies_placement(self):
        ds = synthetic_dataset("high", scale=0.2, seed=11)
        table = make_table(ds, "axis", axis_dim=0)
        xs = table.column("x")
        assert np.all(np.diff(xs) >= 0)

    def test_make_database_fresh_state(self):
        ds = synthetic_dataset("high", scale=0.2, seed=12)
        db1 = make_database(ds, "cluster")
        db2 = make_database(ds, "cluster")
        db1.disk(ds.name).read(np.array([0]))
        assert db2.disk(ds.name).blocks_read == 0
