"""Unit and property tests for block arithmetic and the simulated disk."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clock import SimClock
from repro.costs import CostModel
from repro.storage import SimulatedDisk
from repro.storage.pages import (
    block_of_row,
    blocks_of_rows,
    coalesce_runs,
    row_range_of_block,
)


class TestPages:
    def test_block_of_row(self):
        assert block_of_row(0, 8) == 0
        assert block_of_row(7, 8) == 0
        assert block_of_row(8, 8) == 1

    def test_block_of_row_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            block_of_row(-1, 8)
        with pytest.raises(ValueError, match="positive"):
            block_of_row(0, 0)

    def test_row_range_of_block(self):
        assert row_range_of_block(1, 8, 20) == range(8, 16)
        assert row_range_of_block(2, 8, 20) == range(16, 20)  # clipped

    def test_row_range_beyond_table(self):
        with pytest.raises(ValueError, match="beyond the table"):
            row_range_of_block(3, 8, 20)

    def test_blocks_of_rows(self):
        rows = np.array([0, 1, 9, 17, 18])
        np.testing.assert_array_equal(blocks_of_rows(rows, 8), [0, 1, 2])

    def test_blocks_of_rows_empty(self):
        assert blocks_of_rows(np.array([]), 8).size == 0

    def test_blocks_of_rows_rejects_negative_rows(self):
        with pytest.raises(ValueError, match="non-negative"):
            blocks_of_rows(np.array([3, -1, 5]), 8)

    def test_blocks_of_rows_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="positive"):
            blocks_of_rows(np.array([1, 2]), 0)
        # Validated even for empty input: a bad block size is a caller
        # bug regardless of what rows happen to arrive.
        with pytest.raises(ValueError, match="positive"):
            blocks_of_rows(np.array([]), -4)

    def test_coalesce_runs(self):
        runs = list(coalesce_runs([1, 2, 3, 7, 8, 11]))
        assert runs == [(1, 3), (7, 2), (11, 1)]

    def test_coalesce_runs_single(self):
        assert list(coalesce_runs([5])) == [(5, 1)]

    def test_coalesce_runs_empty(self):
        assert list(coalesce_runs([])) == []
        assert list(coalesce_runs(np.empty(0, dtype=np.int64))) == []

    def test_coalesce_runs_normalizes_unsorted_and_duplicates(self):
        # A request reads a *set* of blocks: order and multiplicity are
        # presentation details, not semantics.
        assert list(coalesce_runs([4, 3])) == [(3, 2)]
        assert list(coalesce_runs([3, 3, 4])) == [(3, 2)]
        assert list(coalesce_runs([11, 7, 8, 2, 1, 3, 8])) == [
            (1, 3),
            (7, 2),
            (11, 1),
        ]

    def test_coalesce_runs_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            list(coalesce_runs([2, -1, 3]))

    @given(st.lists(st.integers(0, 200), min_size=1))
    def test_coalesce_runs_partition_property(self, ids):
        ordered = sorted(set(ids))
        runs = list(coalesce_runs(ids))
        rebuilt = [b for start, count in runs for b in range(start, start + count)]
        assert rebuilt == ordered
        # Runs are maximal: consecutive runs leave a gap.
        for (s1, c1), (s2, _) in zip(runs, runs[1:]):
            assert s1 + c1 < s2


@pytest.fixture()
def disk():
    return SimulatedDisk(100, CostModel(seek_ms=1.0, transfer_ms=0.1), SimClock())


class TestSimulatedDisk:
    def test_single_run_costs_one_seek(self, disk):
        elapsed = disk.read(np.array([10, 11, 12]))
        assert elapsed == pytest.approx(0.001 + 3 * 0.0001)
        assert disk.seeks == 1
        assert disk.blocks_read == 3

    def test_dispersed_runs_cost_multiple_seeks(self, disk):
        disk.read(np.array([1, 5, 9]))
        assert disk.seeks == 3

    def test_sequential_continuation_avoids_seek(self, disk):
        disk.read(np.array([10, 11]))
        disk.read(np.array([12, 13]))  # head continues
        assert disk.seeks == 1

    def test_rereads_counted(self, disk):
        disk.read(np.array([1, 2, 3]))
        disk.read(np.array([2, 3, 4]))
        assert disk.blocks_read == 6
        assert disk.blocks_reread == 2

    def test_clock_advances(self, disk):
        before = disk.clock.now
        disk.read(np.array([0]))
        assert disk.clock.now > before
        assert disk.clock.now - before == pytest.approx(disk.total_time_s)

    def test_out_of_range_rejected(self, disk):
        with pytest.raises(ValueError, match="out of range"):
            disk.read(np.array([100]))
        with pytest.raises(ValueError, match="out of range"):
            disk.read(np.array([-1]))

    def test_empty_read_free(self, disk):
        assert disk.read(np.array([], dtype=np.int64)) == 0.0
        assert disk.requests == 0

    def test_sequential_scan(self, disk):
        elapsed = disk.sequential_scan()
        assert disk.blocks_read == 100
        assert disk.seeks == 1
        assert elapsed == pytest.approx(0.001 + 100 * 0.0001)

    def test_mean_read_ms(self, disk):
        disk.read(np.arange(100))
        # 1 seek + 100 transfers over 100 blocks.
        assert disk.mean_read_ms() == pytest.approx((1.0 + 100 * 0.1) / 100)

    def test_dev_read_ms_zero_without_seeks(self, disk):
        assert disk.dev_read_ms() == 0.0

    def test_stats_dict(self, disk):
        disk.read(np.array([3, 50]))
        stats = disk.stats()
        assert stats["blocks_read"] == 2
        assert stats["seeks"] == 2
        assert stats["requests"] == 1

    def test_reset_stats(self, disk):
        disk.read(np.array([1, 2]))
        disk.reset_stats()
        assert disk.blocks_read == 0
        assert disk.seeks == 0
        assert disk.total_time_s == 0.0

    def test_needs_positive_capacity(self):
        with pytest.raises(ValueError, match="at least one block"):
            SimulatedDisk(0, CostModel(), SimClock())


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-1)

    def test_advance_to_only_forward(self):
        clock = SimClock(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_reset(self):
        clock = SimClock(2.0)
        clock.reset()
        assert clock.now == 0.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock(-1.0)
