"""Unit tests for the SQLite backend, selection precedence, and the seam.

The differential suite (``test_backend_differential.py``) proves whole
runs agree across backends; this file pins the individual contracts —
bit-exact loader round-trips (NaNs, quarantined blocks, odd tail
blocks), the handle's row-access alignment guarantees, ``ON CONFLICT``
install dedup, file-store reopening, selection precedence with
``ConfigError`` on unknown schemes, and the latent simulator assumptions
the abstraction surfaced (``register`` returning the handle,
``DataManager.rebind_table`` keeping it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ContentObjective, Grid, Rect, col
from repro.errors import ConfigError
from repro.io import export_table_sqlite, import_table_sqlite
from repro.storage import (
    Database,
    HeapTable,
    SimulatorBackend,
    SQLiteBackend,
    TableSchema,
    backend_from_url,
    grid_key,
    resolve_backend,
)
from repro.storage.integrity import StorageFaultPlan

pytestmark = pytest.mark.backend


def _table(name="t", rows=100, tpb=16, nan_at=()):
    rng = np.random.default_rng(3)
    x = rng.uniform(0, 10, rows)
    y = rng.uniform(0, 10, rows)
    v = rng.normal(0, 1, rows)
    for i in nan_at:
        v[i] = np.nan
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    return HeapTable(name, schema, {"x": x, "y": y, "v": v}, tuples_per_block=tpb)


GRID = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


# -- loader round-trip --------------------------------------------------------


def test_round_trip_bit_exact():
    table = _table(rows=103, nan_at=(0, 50, 102))  # odd tail block + NaNs
    backend = SQLiteBackend()
    backend.bind_table(table)
    dump = backend.dump_table(table.name)
    for c in table.schema.columns:
        np.testing.assert_array_equal(
            dump[c].view(np.uint64), np.asarray(table.column(c)).view(np.uint64)
        )


def test_round_trip_empty_region_and_quarantined_blocks():
    # Rows clustered in [0,5)^2: the [5,10)^2 region is empty, and
    # quarantining a block is a read-path overlay — the store still
    # round-trips every byte.
    rng = np.random.default_rng(9)
    rows = 64
    x = rng.uniform(0, 5, rows)
    y = rng.uniform(0, 5, rows)
    v = rng.normal(0, 1, rows)
    table = HeapTable("q", TableSchema(["x", "y", "v"], ["x", "y"]),
                      {"x": x, "y": y, "v": v}, tuples_per_block=8)
    db = Database(backend="sqlite:")
    db.register(table)
    db.attach_integrity(StorageFaultPlan(seed=0))
    db.integrity("q").quarantined.add(0)

    scan = db.range_cell_aggregates("q", GRID, [5.0, 5.0], [10.0, 10.0],
                                    [ContentObjective.of("avg", col("v"))])
    assert scan.cells == {}

    dump = db.backend.dump_table("q")
    for name, src in (("x", x), ("y", y), ("v", v)):
        np.testing.assert_array_equal(dump[name], src)


def test_io_export_import_round_trip(tmp_path):
    table = _table(rows=57, tpb=10, nan_at=(3,))
    path = export_table_sqlite(table, tmp_path / "store.db")
    dump = import_table_sqlite(path, table.name)
    for c in table.schema.columns:
        np.testing.assert_array_equal(
            dump[c].view(np.uint64), np.asarray(table.column(c)).view(np.uint64)
        )


def test_file_store_reopens_from_catalog(tmp_path):
    table = _table(rows=40, tpb=8)
    path = str(tmp_path / "dev.db")
    first = SQLiteBackend(path)
    first.bind_table(table)
    first.close()

    reopened = SQLiteBackend(path)
    assert reopened.table_names() == (table.name,)
    handle = reopened.handle(table.name)
    assert handle.num_rows == table.num_rows
    assert handle.tuples_per_block == table.tuples_per_block
    assert handle.schema.columns == table.schema.columns
    assert handle.schema.coordinate_columns == table.schema.coordinate_columns
    np.testing.assert_array_equal(handle.column("v"), table.column("v"))
    mins, maxs = handle.block_mbrs()
    ref_mins, ref_maxs = table.block_mbrs()
    np.testing.assert_array_equal(mins, ref_mins)
    np.testing.assert_array_equal(maxs, ref_maxs)


# -- handle contract ----------------------------------------------------------


def test_gather_alignment_unsorted_and_duplicates():
    table = _table(rows=60)
    backend = SQLiteBackend()
    handle = backend.bind_table(table)
    rows = np.array([17, 3, 3, 59, 0, 17], dtype=np.int64)
    np.testing.assert_array_equal(handle.gather("v", rows), table.gather("v", rows))
    np.testing.assert_array_equal(
        handle.coordinates_of(rows), table.coordinates_of(rows)
    )


def test_gather_rejects_out_of_range_rows():
    handle = SQLiteBackend().bind_table(_table(rows=10))
    with pytest.raises(ValueError, match="out of range"):
        handle.gather("v", np.array([0, 10]))


def test_gather_unknown_column():
    handle = SQLiteBackend().bind_table(_table())
    with pytest.raises(KeyError, match="no column"):
        handle.gather("nope", np.array([0]))


def test_blocks_matching_equals_simulator_on_random_boxes():
    table = _table(rows=257, tpb=16)
    handle = SQLiteBackend().bind_table(table)
    rng = np.random.default_rng(11)
    for _ in range(25):
        lo = rng.uniform(0, 9, 2)
        hi = lo + rng.uniform(0.1, 6, 2)
        ref_blocks, ref_rows = table.blocks_matching(lo, hi)
        got_blocks, got_rows = handle.blocks_matching(lo, hi)
        np.testing.assert_array_equal(got_blocks, ref_blocks)
        np.testing.assert_array_equal(got_rows, ref_rows)
        np.testing.assert_array_equal(
            handle.blocks_intersecting(lo, hi), table.blocks_intersecting(lo, hi)
        )


def test_block_geometry_matches():
    table = _table(rows=103, tpb=16)  # ragged final block
    handle = SQLiteBackend().bind_table(table)
    assert handle.num_blocks == table.num_blocks
    assert handle.block_rows(6) == table.block_rows(6)
    with pytest.raises(ValueError):
        handle.block_rows(handle.num_blocks)
    ids = np.array([0, 2, 6], dtype=np.int64)
    np.testing.assert_array_equal(handle.rows_of_blocks(ids), table.rows_of_blocks(ids))


# -- install dedup ------------------------------------------------------------


def test_install_cells_on_conflict_dedup():
    backend = SQLiteBackend()
    backend.bind_table(_table())
    gkey = grid_key(GRID)
    assert backend.install_cells("t", gkey, [1, 2, 3]) == (3, 0)
    assert backend.install_cells("t", gkey, [2, 3, 4]) == (1, 2)
    assert backend.install_cells("t", gkey, []) == (0, 0)
    assert backend.installed_cell_count("t", gkey) == 4
    assert backend.installed_cell_count("t") == 4
    # A different grid geometry scopes its own install set.
    other = grid_key(Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (2.0, 2.0)))
    assert backend.install_cells("t", other, [1]) == (1, 0)
    assert backend.installed_cell_count("t") == 5


def test_simulator_install_dedup_matches():
    backend = SimulatorBackend()
    backend.bind_table(_table())
    gkey = grid_key(GRID)
    assert backend.install_cells("t", gkey, [1, 2, 3]) == (3, 0)
    assert backend.install_cells("t", gkey, np.array([2, 3, 4])) == (1, 2)
    assert backend.installed_cell_count("t", gkey) == 4


def test_sqlite_persists_cell_stats():
    table = _table(rows=120, tpb=16)
    db = Database(backend="sqlite:")
    db.register(table)
    scan = db.range_cell_aggregates(
        "t", GRID, [0.0, 0.0], [10.0, 10.0], [ContentObjective.of("avg", col("v"))]
    )
    stored = db.backend.fetch_cell_summaries("t", grid_key(GRID))
    assert set(stored) == set(scan.cells)
    cell, entry = next(iter(scan.cells.items()))
    for key, stats in entry.items():
        count, total, minimum, maximum = stored[cell][key]
        assert (count, total, minimum, maximum) == (
            stats.count, stats.total, stats.minimum, stats.maximum
        )


def test_install_state_round_trip():
    """Checkpoint capture of the install record reproduces the dedup split.

    A resumed run's (installed, deduped) counters must match the
    uninterrupted run's, so restoring a capture onto a fresh backend has
    to reproduce exactly which cells count as already-installed — the
    checkpoint suite covers the end-to-end contract, this pins the seam.
    """
    gkey = grid_key(GRID)
    other = grid_key(Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (2.0, 2.0)))
    stats = [(1, "v", 3, 2.5, float("nan"), 7.0)]
    for make in (SimulatorBackend, SQLiteBackend):
        source, fresh = make(), make()
        for b in (source, fresh):
            b.bind_table(_table())
        source.install_cells("t", gkey, [1, 2, 3], stats)
        source.install_cells("t", other, [1])
        fresh.restore_install_state("t", source.install_state("t"))
        assert fresh.installed_cell_count("t") == 4, make.__name__
        assert fresh.install_cells("t", gkey, [2, 3, 4]) == (1, 2), make.__name__
        assert fresh.installed_cell_count("t", other) == 1, make.__name__
    # The SQLite capture carries the persisted stat rows too, NaN intact.
    restored = fresh.fetch_cell_summaries("t", gkey, [1])
    count, total, minimum, maximum = restored[1]["v"]
    assert (count, total, maximum) == (3, 2.5, 7.0)
    assert np.isnan(minimum)


def test_rebind_clears_install_record():
    for backend in (SimulatorBackend(), SQLiteBackend()):
        table = _table()
        backend.bind_table(table)
        gkey = grid_key(GRID)
        backend.install_cells("t", gkey, [1, 2])
        assert backend.installed_cell_count("t") == 2
        backend.bind_table(_table())  # rebind supersedes the rows
        assert backend.installed_cell_count("t") == 0, type(backend).__name__


# -- selection precedence -----------------------------------------------------


def test_explicit_spec_beats_database_url():
    env = {"DATABASE_URL": "sqlite:"}
    assert resolve_backend("simulator", env=env).name == "simulator"
    inst = SimulatorBackend()
    assert resolve_backend(inst, env=env) is inst


def test_database_url_beats_default():
    assert resolve_backend(None, env={"DATABASE_URL": "sqlite:"}).name == "sqlite"
    assert resolve_backend(None, env={}).name == "simulator"


def test_database_url_env_integration(monkeypatch):
    monkeypatch.setenv("DATABASE_URL", "sqlite:")
    db = Database()
    assert db.backend.name == "sqlite"
    monkeypatch.delenv("DATABASE_URL")
    assert Database().backend.name == "simulator"


def test_unknown_scheme_raises_config_error():
    with pytest.raises(ConfigError, match="unknown storage backend scheme"):
        resolve_backend(None, env={"DATABASE_URL": "bogus:thing"})
    with pytest.raises(ConfigError, match="empty"):
        backend_from_url("   ")
    with pytest.raises(ConfigError, match="StorageBackend or URL"):
        resolve_backend(123)


def test_postgres_rejected_as_planned_but_unimplemented():
    # Not the generic unknown-scheme error: the message must name the
    # scheme as planned (it is the paper's production tier) and point at
    # the working alternatives.
    for url in ("postgres://db/prod", "postgresql://host:5432/x", "POSTGRES:x"):
        with pytest.raises(ConfigError, match="planned but not yet implemented"):
            backend_from_url(url)


def test_url_forms():
    assert backend_from_url("sim").name == "simulator"
    assert backend_from_url("memory").name == "simulator"
    for url in ("sqlite", "sqlite:", "sqlite::memory:"):
        backend = backend_from_url(url)
        assert backend.name == "sqlite" and backend.path == ":memory:"


def test_sqlite_file_url(tmp_path):
    path = tmp_path / "x.db"
    backend = backend_from_url(f"sqlite:{path}")
    assert backend.path == str(path)
    backend.bind_table(_table())
    backend.close()
    assert path.exists()


def test_sqlite_rejects_hostile_table_name():
    with pytest.raises(ConfigError, match="not storable"):
        SQLiteBackend().bind_table(
            HeapTable(
                'bad"; DROP TABLE sw_tables; --',
                TableSchema(["x"], ["x"]),
                {"x": np.array([1.0])},
            )
        )


# -- latent-assumption fixes --------------------------------------------------


def test_register_returns_backend_handle():
    table = _table()
    sim_db = Database(backend="simulator")
    assert sim_db.register(table) is table  # simulator handle == table
    sql_db = Database(backend="sqlite:")
    handle = sql_db.register(_table())
    assert handle is not table
    assert sql_db.table("t") is handle


def test_rebind_table_keeps_backend_handle():
    # DataManager.rebind_table used to stash the raw heap table instead
    # of the handle register() returns — invisible under the simulator,
    # wrong under any real backend.
    from repro.core.datamanager import DataManager
    from repro.sampling import StratifiedSampler

    table = _table("orig", rows=80)
    db = Database(backend="sqlite:")
    db.register(table)
    sample = StratifiedSampler(0.1, seed=1).sample(db.table("orig"), GRID)
    dm = DataManager(db, "orig", GRID, [ContentObjective.of("avg", col("v"))], sample)
    assert dm.backend_name == "sqlite"

    bigger = _table("bigger", rows=160)
    dm.rebind_table(bigger)
    assert dm._table is db.table("bigger")
    assert type(dm._table).__name__ == "SQLiteTable"


def test_cellscan_records_backend():
    table = _table()
    db = Database(backend="sqlite:")
    db.register(table)
    scan = db.range_cell_aggregates("t", GRID, [0.0, 0.0], [5.0, 5.0], [])
    assert scan.backend == "sqlite"


def test_deep_verify_through_handle():
    table = _table(rows=50, tpb=8)
    db = Database(backend="sqlite:")
    db.register(table)
    db.attach_integrity(StorageFaultPlan(seed=0))
    integ = db.integrity("t")
    assert all(integ.deep_verify(b) for b in range(db.table("t").num_blocks))
