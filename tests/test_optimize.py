"""Tests for optimization queries (the Section 8 future-work extension)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    ComparisonOp,
    ConditionSet,
    ContentCondition,
    ContentObjective,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
    enumerate_windows,
)
from repro.core.datamanager import DataManager
from repro.core.optimize import OptimizeSearch
from repro.sampling import StratifiedSampler
from repro.workloads import make_database, synthetic_dataset


@pytest.fixture(scope="module")
def setup():
    dataset = synthetic_dataset("high", scale=0.18, seed=31)
    return dataset


def make_search(dataset, conditions, maximize=True, objective=None):
    db = make_database(dataset, "cluster")
    objective = objective or ContentObjective.of("avg", col("value"))
    sample = StratifiedSampler(0.3, seed=41).sample(db.table(dataset.name), dataset.grid)
    dm = DataManager(db, dataset.name, dataset.grid, [objective], sample)
    cs = ConditionSet.of(conditions, dataset.grid.ndim)
    return OptimizeSearch(objective, cs, dm, maximize=maximize)


def brute_force_best(dataset, max_card, maximize=True):
    from repro.storage.placement import cell_flat_ids

    grid = dataset.grid
    flat = cell_flat_ids(dataset.coordinates(), grid)
    counts = np.bincount(flat, minlength=grid.num_cells).reshape(grid.shape)
    sums = np.bincount(
        flat, weights=dataset.columns["value"], minlength=grid.num_cells
    ).reshape(grid.shape)
    best = None
    for w in enumerate_windows(grid, max_lengths=(max_card, max_card)):
        if w.cardinality > max_card:
            continue
        box = tuple(slice(l, u) for l, u in zip(w.lo, w.hi))
        count = counts[box].sum()
        if count == 0:
            continue
        value = sums[box].sum() / count
        if best is None or (value > best if maximize else value < best):
            best = value
    return best


CARD_CAP = [ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4)]


class TestOptimizeSearch:
    def test_finds_global_maximum(self, setup):
        search = make_search(setup, CARD_CAP, maximize=True)
        result = search.run()
        expected = brute_force_best(setup, 4, maximize=True)
        assert result.best is not None
        assert result.best.value == pytest.approx(expected)

    def test_finds_global_minimum(self, setup):
        search = make_search(setup, CARD_CAP, maximize=False)
        result = search.run()
        expected = brute_force_best(setup, 4, maximize=False)
        assert result.best.value == pytest.approx(expected)

    def test_incumbents_improve_monotonically(self, setup):
        search = make_search(setup, CARD_CAP, maximize=True)
        result = search.run()
        values = [inc.value for inc in result.trajectory]
        assert values == sorted(values)
        times = [inc.time for inc in result.trajectory]
        assert times == sorted(times)

    def test_guided_search_converges_early(self, setup):
        """The estimate-ordered search should lock the optimum long
        before evaluating the whole space."""
        search = make_search(setup, CARD_CAP, maximize=True)
        result = search.run()
        assert result.best.time < result.completion_time_s / 2

    def test_online_iteration(self, setup):
        search = make_search(setup, CARD_CAP, maximize=True)
        first = next(search.iter_incumbents())
        assert math.isfinite(first.value)

    def test_shape_conditions_respected(self, setup):
        conditions = [
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.EQ, 2),
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.EQ, 2),
        ]
        search = make_search(setup, conditions, maximize=True)
        result = search.run()
        assert result.best.window.lengths == (2, 2)

    def test_content_conditions_rejected(self, setup):
        objective = ContentObjective.of("avg", col("value"))
        content = [ContentCondition(objective, ComparisonOp.GT, 1.0)]
        with pytest.raises(ValueError, match="shape conditions only"):
            make_search(setup, content)

    def test_windows_evaluated_counted(self, setup):
        search = make_search(setup, CARD_CAP, maximize=True)
        result = search.run()
        assert result.windows_evaluated > 0
        assert result.completion_time_s > 0
