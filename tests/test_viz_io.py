"""Tests for terminal visualization and dataset/result persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Grid, Rect, ResultWindow, Window
from repro.io import load_dataset, results_to_rows, save_dataset, write_results_csv
from repro.viz import render_grid, render_results, render_timeline
from repro.workloads import synthetic_dataset


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 5.0)]), (1.0, 1.0))


def result(lo, hi, grid, time=0.0, **objectives):
    window = Window(lo, hi)
    return ResultWindow(
        window=window, bounds=window.rect(grid), objective_values=objectives, time=time
    )


class TestRenderGrid:
    def test_dimensions(self):
        text = render_grid(np.zeros((10, 5)), legend=False)
        lines = text.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 12 for line in lines)  # 10 cells + 2 borders

    def test_intensity_mapping(self):
        values = np.array([[0.0, 10.0]])  # 1 column, 2 rows
        text = render_grid(values, legend=False)
        top, bottom = text.splitlines()
        assert top == "|@|"
        assert bottom == "| |"

    def test_nan_renders_blank(self):
        values = np.array([[np.nan], [5.0]])
        text = render_grid(values, legend=False)
        assert " " in text

    def test_legend(self):
        text = render_grid(np.array([[1.0, 2.0]]))
        assert "scale:" in text

    def test_downsampling(self):
        text = render_grid(np.random.default_rng(0).random((300, 4)), max_width=50, legend=False)
        width = len(text.splitlines()[0]) - 2
        assert width <= 50

    def test_1d_input(self):
        text = render_grid(np.array([1.0, 2.0, 3.0]), legend=False)
        assert len(text.splitlines()) == 1

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="1-D or 2-D"):
            render_grid(np.zeros((2, 2, 2)))

    def test_constant_grid(self):
        text = render_grid(np.full((4, 2), 7.0), legend=False)
        assert "@" in text


class TestRenderResults:
    def test_density(self, grid):
        results = [
            result((0, 0), (2, 2), grid),
            result((1, 1), (3, 3), grid),
        ]
        text = render_results(results, grid)
        # Cell (1,1) covered twice renders darkest.
        assert "@" in text

    def test_empty_results(self, grid):
        text = render_results([], grid)
        assert "|" in text


class TestRenderTimeline:
    def test_counts_reported(self, grid):
        results = [result((0, 0), (1, 1), grid, time=t) for t in (0.1, 0.2, 0.9)]
        text = render_timeline(results, total_time=1.0, width=10)
        assert "3 results" in text

    def test_early_burst_shape(self, grid):
        results = [result((0, 0), (1, 1), grid, time=0.01 * i) for i in range(10)]
        text = render_timeline(results, total_time=1.0, width=10)
        bar = text.split("|")[1]
        assert bar[0] == "█"
        assert bar[-1] == " "

    def test_zero_results(self, grid):
        assert "0 results" in render_timeline([], total_time=1.0)

    def test_validation(self, grid):
        with pytest.raises(ValueError, match="total_time"):
            render_timeline([], total_time=0.0)


class TestDatasetPersistence:
    def test_roundtrip(self, tmp_path):
        dataset = synthetic_dataset("medium", scale=0.2, seed=81)
        path = save_dataset(dataset, tmp_path / "synth.npz")
        loaded = load_dataset(path)
        assert loaded.name == dataset.name
        assert loaded.schema.columns == dataset.schema.columns
        assert loaded.grid.shape == dataset.grid.shape
        assert loaded.clusters == dataset.clusters
        for name in dataset.columns:
            np.testing.assert_array_equal(loaded.columns[name], dataset.columns[name])
        assert loaded.meta["spread"] == "medium"

    def test_loaded_dataset_runs(self, tmp_path):
        from repro.core import SWEngine
        from repro.workloads import make_database, synthetic_query

        dataset = synthetic_dataset("high", scale=0.2, seed=82)
        loaded = load_dataset(save_dataset(dataset, tmp_path / "d.npz"))
        db = make_database(loaded, "cluster")
        run = SWEngine(db, loaded.name, sample_fraction=0.3).execute(
            synthetic_query(loaded)
        ).run
        db2 = make_database(dataset, "cluster")
        reference = SWEngine(db2, dataset.name, sample_fraction=0.3).execute(
            synthetic_query(dataset)
        ).run
        assert {r.window for r in run.results} == {r.window for r in reference.results}

    def test_version_check(self, tmp_path):
        import json

        dataset = synthetic_dataset("low", scale=0.2, seed=83)
        path = save_dataset(dataset, tmp_path / "d.npz")
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(data["__meta__"]))
        meta["format_version"] = 99
        data["__meta__"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="unsupported dataset format"):
            load_dataset(path)


class TestResultExport:
    def test_rows(self, grid):
        results = [
            result((0, 0), (2, 1), grid, time=1.5, avg=25.0),
            result((3, 3), (4, 5), grid, time=2.5, avg=28.0),
        ]
        header, rows = results_to_rows(results, ("x", "y"))
        assert header == ["lb_x", "lb_y", "ub_x", "ub_y", "avg", "time_s"]
        assert rows[0] == [0.0, 0.0, 2.0, 1.0, 25.0, 1.5]

    def test_csv(self, grid, tmp_path):
        results = [result((0, 0), (1, 1), grid, time=0.5, avg=25.0)]
        path = write_results_csv(results, ("x", "y"), tmp_path / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "lb_x,lb_y,ub_x,ub_y,avg,time_s"
        assert len(content) == 2
