"""Differential oracle: SW search versus the brute-force SQL baseline.

Hypothesis generates small semantic-window queries — random shape bounds
and content intervals over the tiny synthetic dataset — and every one
must produce the *identical result set* three ways:

* the blocking complex-SQL baseline (``dbms.baseline``), which
  enumerates windows exhaustively and is the trusted oracle;
* the serial :class:`HeuristicSearch` through :class:`SWEngine`;
* a 2-worker distributed run.

Both SW executions run fully instrumented and must pass the
:class:`InvariantAuditor` — so each generated query doubles as an
accounting-identity fuzz case.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clock import SimClock
from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    SWEngine,
    SWQuery,
    col,
)
from repro.costs import DEFAULT_COST_MODEL
from repro.dbms import run_sql_baseline
from repro.distributed import DistributedConfig, run_distributed
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.storage.database import Database
from repro.workloads import synthetic_dataset
from repro.workloads.base import make_table

pytestmark = pytest.mark.slow

_DATASET = synthetic_dataset("high", scale=0.2, seed=5)
_TABLE = make_table(_DATASET, "cluster")


def _fresh_db() -> Database:
    db = Database(cost_model=DEFAULT_COST_MODEL, clock=SimClock(), buffer_fraction=0.15)
    db.register(_TABLE)
    return db


def _build_query(card_hi: int, min_len: int, avg_lo: float, width: float) -> SWQuery:
    grid = _DATASET.grid
    avg_value = ContentObjective.of("avg", col("value"))
    conditions = [
        ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, card_hi),
        ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, min_len),
        ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.GE, min_len),
        ContentCondition(avg_value, ComparisonOp.GT, avg_lo),
        ContentCondition(avg_value, ComparisonOp.LT, avg_lo + width),
    ]
    return SWQuery.build(
        dimensions=("x", "y"),
        area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
        steps=grid.steps,
        conditions=conditions,
    )


query_params = st.tuples(
    st.integers(min_value=2, max_value=12),   # cardinality upper bound
    st.integers(min_value=1, max_value=2),    # per-dimension length floor
    st.floats(min_value=0.0, max_value=35.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=1.0, max_value=25.0, allow_nan=False, allow_infinity=False),
)


def _audited(registry: MetricsRegistry, label: str) -> None:
    report = InvariantAuditor(registry).report()
    assert report["ok"], f"{label}: {report['violations']}"


@given(params=query_params)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
def test_search_matches_baseline(params):
    card_hi, min_len, avg_lo, width = params
    query = _build_query(card_hi, min_len, avg_lo, width)

    oracle = run_sql_baseline(_fresh_db(), _DATASET.name, query)
    expected = {r.window for r in oracle.results}

    serial_db = _fresh_db()
    registry = MetricsRegistry()
    serial_db.attach_metrics(registry)
    engine = SWEngine(serial_db, _DATASET.name, sample_fraction=0.1)
    report = engine.execute(query, SearchConfig(alpha=1.0))
    assert {r.window for r in report.results} == expected
    _audited(registry, "serial")

    dist_registry = MetricsRegistry()
    dist = run_distributed(
        _DATASET,
        query,
        DistributedConfig(
            num_workers=2,
            overlap="no_overlap",
            placement="cluster",
            search=SearchConfig(alpha=1.0),
            sample_fraction=0.1,
        ),
        metrics=dist_registry,
    )
    assert {r.window for r in dist.results} == expected
    _audited(dist_registry, "distributed")
