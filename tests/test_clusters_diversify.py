"""Unit tests for result clusters and diversification machinery."""

from __future__ import annotations

import pytest

from repro.core import Grid, Rect, ResultWindow, Window
from repro.core.clusters import ClusterTracker, cluster_discovery_times, final_clusters
from repro.core.diversify import (
    SubAreaQueues,
    partition_tiles,
    subarea_of,
)


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


def res(window: Window, grid: Grid, time: float) -> ResultWindow:
    return ResultWindow(window=window, bounds=window.rect(grid), time=time)


class TestClusterTracker:
    def test_disjoint_results_make_clusters(self, grid):
        tracker = ClusterTracker(grid)
        assert tracker.add(Window((0, 0), (2, 2))) == 1
        assert tracker.add(Window((5, 5), (7, 7))) == 2

    def test_overlapping_results_merge(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (3, 3)))
        tracker.add(Window((2, 2), (5, 5)))
        assert tracker.num_clusters == 1

    def test_transitive_merge(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (2, 2)))
        tracker.add(Window((4, 4), (6, 6)))
        assert tracker.num_clusters == 2
        # Bridges both -> everything is one cluster.
        tracker.add(Window((1, 1), (5, 5)))
        assert tracker.num_clusters == 1

    def test_cluster_mbr(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (2, 2)))
        tracker.add(Window((1, 1), (4, 5)))
        rects = tracker.cluster_rects()
        assert len(rects) == 1
        assert rects[0].lower == (0.0, 0.0)
        assert rects[0].upper == (4.0, 5.0)

    def test_min_distance_no_clusters(self, grid):
        tracker = ClusterTracker(grid)
        assert tracker.min_distance(Window((0, 0), (1, 1))) == 1.0

    def test_min_distance_touching_zero(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (2, 2)))
        assert tracker.min_distance(Window((1, 1), (3, 3))) == 0.0

    def test_min_distance_normalized(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (1, 1)))
        d = tracker.min_distance(Window((9, 9), (10, 10)))
        assert 0 < d <= 1.0

    def test_belongs_to_cluster(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (2, 2)))
        assert tracker.belongs_to_cluster(Window((1, 1), (3, 3)))
        assert not tracker.belongs_to_cluster(Window((5, 5), (6, 6)))


class TestPostHocClustering:
    def test_final_clusters(self, grid):
        results = [
            res(Window((0, 0), (2, 2)), grid, 1.0),
            res(Window((1, 1), (3, 3)), grid, 2.0),
            res(Window((7, 7), (9, 9)), grid, 3.0),
        ]
        groups = final_clusters(results, grid)
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_discovery_times(self, grid):
        results = [
            res(Window((7, 7), (9, 9)), grid, 5.0),  # cluster B found late
            res(Window((0, 0), (2, 2)), grid, 1.0),  # cluster A found first
            res(Window((1, 1), (3, 3)), grid, 9.0),  # same cluster A, later
        ]
        times = cluster_discovery_times(results, grid)
        assert times == [1.0, 5.0]

    def test_empty_results(self, grid):
        assert cluster_discovery_times([], grid) == []


class TestPartitionTiles:
    def test_perfect_squares(self):
        assert partition_tiles(4, (20, 20)) == (2, 2)
        assert partition_tiles(9, (20, 20)) == (3, 3)
        assert partition_tiles(16, (20, 20)) == (4, 4)

    def test_non_square(self):
        tiles = partition_tiles(6, (20, 20))
        assert tiles[0] * tiles[1] == 6

    def test_1d(self):
        assert partition_tiles(5, (20,)) == (5,)

    def test_too_many_subareas(self):
        with pytest.raises(ValueError, match="cannot split"):
            partition_tiles(25, (4, 100))

    def test_at_least_one(self):
        with pytest.raises(ValueError, match="at least one"):
            partition_tiles(0, (10, 10))

    def test_subarea_of_covers_all_ids(self):
        tiles = partition_tiles(4, (10, 10))
        ids = {
            subarea_of((i, j), (10, 10), tiles) for i in range(10) for j in range(10)
        }
        assert ids == {0, 1, 2, 3}

    def test_subarea_of_contiguity(self):
        tiles = partition_tiles(4, (10, 10))
        assert subarea_of((0, 0), (10, 10), tiles) == 0
        assert subarea_of((9, 9), (10, 10), tiles) == 3


class TestSubAreaQueues:
    def test_round_robin_service(self):
        queues = SubAreaQueues(4, (10, 10))
        # One window in each quadrant, same priority.
        anchors = [(0, 0), (0, 9), (9, 0), (9, 9)]
        for a in anchors:
            queues.push((0.5, 0.5), Window(a, (a[0] + 1, a[1] + 1)), 0)
        served = [queues.pop()[1].anchor for _ in range(4)]
        assert sorted(served) == sorted(anchors)
        # Each came from a different sub-area.
        tiles = queues.tiles
        assert len({subarea_of(a, (10, 10), tiles) for a in served}) == 4

    def test_skips_empty_subareas(self):
        queues = SubAreaQueues(4, (10, 10))
        queues.push((0.5, 0.5), Window((0, 0), (1, 1)), 0)
        assert queues.pop() is not None
        assert queues.pop() is None

    def test_peek_matches_last_served_queue(self):
        queues = SubAreaQueues(2, (10, 10))
        queues.push((0.9, 0.0), Window((0, 0), (1, 1)), 0)
        queues.push((0.1, 0.0), Window((0, 1), (1, 2)), 0)
        queues.push((0.8, 0.0), Window((9, 9), (10, 10)), 0)
        queues.pop()
        assert queues.peek_priority() is not None

    def test_len_and_drain(self):
        queues = SubAreaQueues(4, (10, 10))
        for i in range(8):
            queues.push((0.5, 0.0), Window((i, i), (i + 1, i + 1)), 0)
        assert len(queues) == 8
        assert len(list(queues.drain())) == 8
        assert len(queues) == 0
