"""Unit and property tests for the spillable priority queue."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SpillableQueue, Window


def w(i: int) -> Window:
    return Window((i, 0), (i + 1, 1))


priorities = st.tuples(
    st.floats(min_value=0, max_value=1, allow_nan=False),
    st.floats(min_value=0, max_value=1, allow_nan=False),
)


class TestBasicQueue:
    def test_pop_order_by_utility(self):
        q = SpillableQueue()
        q.push((0.2, 0.0), w(0), 0)
        q.push((0.9, 0.0), w(1), 0)
        q.push((0.5, 0.0), w(2), 0)
        assert q.pop()[1] == w(1)
        assert q.pop()[1] == w(2)
        assert q.pop()[1] == w(0)
        assert q.pop() is None

    def test_benefit_breaks_ties(self):
        q = SpillableQueue()
        q.push((0.5, 0.1), w(0), 0)
        q.push((0.5, 0.9), w(1), 0)
        assert q.pop()[1] == w(1)

    def test_peek_does_not_remove(self):
        q = SpillableQueue()
        q.push((0.7, 0.0), w(0), 0)
        assert q.peek_priority() == (0.7, 0.0)
        assert len(q) == 1

    def test_peek_empty(self):
        assert SpillableQueue().peek_priority() is None

    def test_version_carried(self):
        q = SpillableQueue()
        q.push((0.5, 0.5), w(0), 7)
        assert q.pop()[2] == 7

    def test_len(self):
        q = SpillableQueue()
        for i in range(5):
            q.push((i / 10, 0.0), w(i), 0)
        assert len(q) == 5
        q.pop()
        assert len(q) == 4

    def test_drain(self):
        q = SpillableQueue()
        for i in range(5):
            q.push((i / 10, 0.0), w(i), 0)
        entries = list(q.drain())
        assert len(entries) == 5
        assert len(q) == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="head capacity"):
            SpillableQueue(head_capacity=1)
        with pytest.raises(ValueError, match="bucket"):
            SpillableQueue(num_buckets=0)


class TestSpilling:
    def test_spill_keeps_order(self):
        q = SpillableQueue(head_capacity=8, num_buckets=4)
        values = [(i % 97) / 97 for i in range(200)]
        for i, p in enumerate(values):
            q.push((p, 0.0), w(i), 0)
        assert q.spill_events > 0
        popped = []
        while True:
            entry = q.pop()
            if entry is None:
                break
            popped.append(entry[0][0])
        assert len(popped) == 200
        # Global order holds across head and promoted buckets, up to the
        # intra-bucket granularity: priorities never climb by more than
        # one bucket width after a demotion.
        bucket_width = 1 / 4
        for a, b in zip(popped, popped[1:]):
            assert b <= a + bucket_width + 1e-12

    def test_spill_preserves_entries(self):
        q = SpillableQueue(head_capacity=4, num_buckets=8)
        windows = [w(i) for i in range(50)]
        for i, window in enumerate(windows):
            q.push(((i % 10) / 10, 0.0), window, i)
        seen = set()
        while True:
            entry = q.pop()
            if entry is None:
                break
            seen.add(entry[1])
        assert seen == set(windows)

    def test_promote_events_counted(self):
        q = SpillableQueue(head_capacity=4)
        for i in range(20):
            q.push((i / 20, 0.0), w(i), 0)
        while q.pop() is not None:
            pass
        assert q.promote_events > 0

    @given(st.lists(priorities, min_size=1, max_size=80))
    def test_exact_order_with_large_head(self, prios):
        """Without spilling the queue is an exact max-heap."""
        q = SpillableQueue(head_capacity=1000)
        for i, p in enumerate(prios):
            q.push(p, w(i), 0)
        popped = []
        while True:
            entry = q.pop()
            if entry is None:
                break
            popped.append(entry[0])
        assert popped == sorted(prios, reverse=True)

    @given(st.lists(priorities, min_size=1, max_size=120))
    def test_no_entry_lost_when_spilling(self, prios):
        q = SpillableQueue(head_capacity=8, num_buckets=4)
        for i, p in enumerate(prios):
            q.push(p, w(i), 0)
        count = 0
        while q.pop() is not None:
            count += 1
        assert count == len(prios)


class TestBulkAndDeterminism:
    """push_many / drain / promote introduced for the kernel batch path."""

    def _entries(self):
        # Tie-heavy: many exact priority collisions to stress tie order.
        return [
            ((round((i % 5) / 5, 6), round((i % 3) / 3, 6)), w(i), i % 4)
            for i in range(60)
        ]

    def _pop_all(self, q):
        out = []
        while True:
            entry = q.pop()
            if entry is None:
                return out
            out.append(entry)

    def test_push_many_matches_sequential_push(self):
        entries = self._entries()
        q_seq = SpillableQueue()
        for priority, window, version in entries:
            q_seq.push(priority, window, version)
        q_bulk = SpillableQueue()
        q_bulk.push_many(entries)
        # Exact pop-sequence equality, tied windows included: seqs are
        # stamped in input order, so the batch is indistinguishable.
        assert self._pop_all(q_bulk) == self._pop_all(q_seq)

    def test_push_many_accepts_generator(self):
        entries = self._entries()
        q = SpillableQueue()
        q.push_many(iter(entries))
        assert len(q) == len(entries)

    def test_push_many_spills_over_capacity(self):
        entries = self._entries()
        q = SpillableQueue(head_capacity=8, num_buckets=4)
        q.push_many(entries)
        assert len(q) == len(entries)
        assert q.spilled > 0
        assert {e[1] for e in self._pop_all(q)} == {e[1] for e in entries}

    def test_push_many_onto_spilled_queue_preserves_entries(self):
        entries = self._entries()
        q = SpillableQueue(head_capacity=8, num_buckets=4)
        for priority, window, version in entries:
            q.push(priority, window, version)
        assert q.spilled > 0  # threshold is live: bulk path must split
        extra = [((0.01, 0.0), w(100 + i), 0) for i in range(10)]
        q.push_many(extra)
        popped = self._pop_all(q)
        assert {e[1] for e in popped} == {e[1] for e in entries + extra}

    def test_drain_is_content_sorted_and_insertion_independent(self):
        entries = self._entries()
        q_fwd = SpillableQueue()
        q_fwd.push_many(entries)
        q_rev = SpillableQueue()
        q_rev.push_many(entries[::-1])
        drained = list(q_fwd.drain())
        assert drained == list(q_rev.drain())
        keys = [
            (-p[0], -p[1], window.lo, window.hi, version)
            for p, window, version in drained
        ]
        assert keys == sorted(keys)
        assert len(q_fwd) == 0

    def test_promote_tie_order_is_insertion_independent(self):
        # Entries landing in a bucket keep arbitrary order; on promotion
        # they must be re-sequenced by content, not by insertion history.
        tied = [((0.2, 0.5), w(i), 0) for i in range(12)]
        orders = (tied, tied[::-1])
        popped = []
        for order in orders:
            q = SpillableQueue(head_capacity=4, num_buckets=4)
            q._threshold = (0.9, 0.0)  # force every push into a bucket
            for priority, window, version in order:
                q.push(priority, window, version)
            assert q.spilled == len(tied)
            popped.append([entry[1] for entry in self._pop_all(q)])
        assert popped[0] == popped[1]
        assert popped[0] == [w(i) for i in range(12)]


class TestHeadCapacityBoundaries:
    """Determinism exactly at the head-capacity edge, all entry paths."""

    def _mixed_priorities(self, n: int, salt: int = 0):
        # Deterministic, collision-rich priorities spanning the bucket range.
        return [(((i * 7 + salt) % 13) / 13.0, ((i * 5) % 7) / 7.0) for i in range(n)]

    def _arrays_for(self, entries):
        us = np.array([p[0] for p, _, _ in entries], dtype=np.float64)
        bs = np.array([p[1] for p, _, _ in entries], dtype=np.float64)
        lows = np.array([win.lo for _, win, _ in entries], dtype=np.int64)
        his = np.array([win.hi for _, win, _ in entries], dtype=np.int64)
        return us, bs, lows, his

    def _pop_all(self, q):
        out = []
        while (entry := q.pop()) is not None:
            out.append(entry)
        return out

    def test_arrays_push_matches_push_many_at_exact_capacity(self):
        # A batch landing exactly on head_capacity must neither spill nor
        # diverge from the scalar bulk path in pop order or counters.
        entries = [(p, w(i), 3) for i, p in enumerate(self._mixed_priorities(8))]
        q_obj = SpillableQueue(head_capacity=8, num_buckets=4)
        q_arr = SpillableQueue(head_capacity=8, num_buckets=4)
        q_obj.push_many(entries)
        q_arr.push_many_arrays(*self._arrays_for(entries), 3)
        assert q_obj.spill_events == q_arr.spill_events == 0
        assert self._pop_all(q_obj) == self._pop_all(q_arr)

    def test_arrays_push_matches_push_many_across_spill_boundary(self):
        # One entry over capacity: both paths must spill identically, and
        # the large-batch lexsort merge must agree with the heap path.
        for n in (9, 40):  # 9 stays on the heap path, 40 takes the lexsort merge
            entries = [(p, w(i), 1) for i, p in enumerate(self._mixed_priorities(n))]
            q_obj = SpillableQueue(head_capacity=8, num_buckets=4)
            q_arr = SpillableQueue(head_capacity=8, num_buckets=4)
            q_obj.push_many(entries)
            q_arr.push_many_arrays(*self._arrays_for(entries), 1)
            assert q_obj.spilled == q_arr.spilled > 0
            assert q_obj.spill_events == q_arr.spill_events
            assert self._pop_all(q_obj) == self._pop_all(q_arr)

    def test_interleaved_pushes_pops_and_promotes_match(self):
        # Full lifecycle interleaving: bulk push over capacity (spill),
        # pops below capacity (promote), a second bulk push against a live
        # spill threshold, a drain, and a re-push of the drained content.
        first = [(p, w(i), 0) for i, p in enumerate(self._mixed_priorities(12))]
        second = [(p, w(20 + i), 2) for i, p in enumerate(self._mixed_priorities(10, salt=3))]
        logs = []
        for use_arrays in (False, True):
            q = SpillableQueue(head_capacity=4, num_buckets=4)
            log = []
            if use_arrays:
                q.push_many_arrays(*self._arrays_for(first), 0)
            else:
                q.push_many(first)
            assert q.spilled > 0
            for _ in range(6):  # drops the head below capacity: promotes
                log.append(q.pop())
            assert q.promote_events > 0
            if use_arrays:
                q.push_many_arrays(*self._arrays_for(second), 2)
            else:
                q.push_many(second)
            drained = list(q.drain())
            log.append(drained)
            assert len(q) == 0 and q.spilled == 0
            q.push_many(drained)
            log.extend(self._pop_all(q))
            logs.append(log)
        assert logs[0] == logs[1]

    def test_checkpoint_roundtrip_at_capacity_boundary(self):
        # state()/restore_state() across the spill edge must reproduce the
        # exact pop sequence, including bucket contents and seq stamping.
        entries = [(p, w(i), 5) for i, p in enumerate(self._mixed_priorities(11))]
        q = SpillableQueue(head_capacity=8, num_buckets=4)
        q.push_many_arrays(*self._arrays_for(entries), 5)
        q.pop()
        twin = SpillableQueue(head_capacity=8, num_buckets=4)
        twin.restore_state(q.state())
        assert self._pop_all(twin) == self._pop_all(q)
