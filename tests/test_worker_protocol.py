"""Targeted tests of the distributed worker protocol (Section 5 mechanics)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    SWEngine,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.distributed import DistributedConfig, OverlapMode, run_distributed
from repro.distributed.coordinator import _build_worker
from repro.distributed.messages import Network
from repro.distributed.partitioning import plan_partitions
from repro.costs import DEFAULT_COST_MODEL
from repro.sampling import StratifiedSampler
from repro.storage import HeapTable, TableSchema
from repro.workloads import Dataset, make_database


def make_dataset(seed: int, n: int = 250) -> tuple[Dataset, SWQuery]:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 12, n)
    y = rng.uniform(0, 12, n)
    v = rng.normal(20, 8, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    from repro.core import Grid, Rect

    grid = Grid(Rect.from_bounds([(0.0, 12.0), (0.0, 12.0)]), (1.0, 1.0))
    dataset = Dataset(
        name="rand",
        columns={"x": x, "y": y, "v": v},
        schema=schema,
        grid=grid,
    )
    query = SWQuery.build(
        dimensions=("x", "y"),
        area=[(0.0, 12.0), (0.0, 12.0)],
        steps=(1.0, 1.0),
        conditions=[
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 6),
            ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 22.0),
        ],
    )
    return dataset, query


class TestWorkerMechanics:
    def _one_worker(self, workers=2, wid=0):
        dataset, query = make_dataset(1)
        full_table = HeapTable(dataset.name, dataset.schema, dataset.columns, 8)
        sample = StratifiedSampler(0.5, seed=3).sample(full_table, dataset.grid)
        plan = plan_partitions(dataset.grid, workers)
        network = Network(workers, DEFAULT_COST_MODEL)
        config = DistributedConfig(num_workers=workers)
        worker = _build_worker(
            wid, dataset, query, plan, sample, full_table, network, config, DEFAULT_COST_MODEL
        )
        return worker, network, plan, query

    def test_seeds_only_own_anchors(self):
        worker, _, plan, _ = self._one_worker(workers=2, wid=0)
        lo, hi = plan.anchor_slab(0)
        entries = list(worker.queue.drain())
        assert entries, "worker should have seeded start windows"
        assert all(lo <= window.lo[0] < hi for _, window, _ in entries)

    def test_boundary_window_requests_remote_cells(self):
        worker, network, plan, _ = self._one_worker(workers=2, wid=0)
        boundary = plan.boundaries[1]
        from repro.core import Window

        # A window anchored just left of the boundary, spanning across it.
        window = Window((boundary - 1, 0), (boundary + 1, 2))
        worker._explore(window)
        assert window in worker._waiting
        assert network.pending(1) == 1

    def test_request_answered_after_local_read(self):
        worker0, network, plan, query = self._one_worker(workers=2, wid=0)
        # Build worker 1 against the same network.
        dataset, _ = make_dataset(1)
        full_table = HeapTable(dataset.name, dataset.schema, dataset.columns, 8)
        sample = StratifiedSampler(0.5, seed=3).sample(full_table, dataset.grid)
        config = DistributedConfig(num_workers=2)
        worker1 = _build_worker(
            1, dataset, query, plan, sample, full_table, network, config, DEFAULT_COST_MODEL
        )
        boundary = plan.boundaries[1]
        from repro.core import Window

        window = Window((boundary - 1, 0), (boundary + 1, 2))
        worker0._explore(window)
        # Worker 1 hasn't read anything: the request must be parked.
        worker1.advance_to(network.earliest_arrival(1))
        worker1._process_inbox()
        assert worker1._pending, "request should wait for local data"
        # After reading its cells, flushing answers the request.
        worker1.data.read_window(Window((boundary, 0), (boundary + 1, 2)))
        worker1._flush_pending()
        assert not worker1._pending
        assert network.pending(0) == 1  # the response is in flight

    def test_response_unparks_window(self):
        worker0, network, plan, query = self._one_worker(workers=2, wid=0)
        boundary = plan.boundaries[1]
        from repro.core import Window
        from repro.distributed.messages import CellResponse
        from repro.core.aggregates import CellStats
        from repro.storage.database import COUNT_KEY

        window = Window((boundary - 1, 0), (boundary + 1, 1))
        worker0._explore(window)
        assert window in worker0._waiting
        payloads = {
            (boundary, 0): {
                COUNT_KEY: CellStats(0, 0.0, float("inf"), float("-inf")),
            }
        }
        queue_before = len(worker0.queue)
        worker0._handle_response(CellResponse(1, payloads))
        assert window not in worker0._waiting
        assert len(worker0.queue) == queue_before + 1


class TestDistributedEqualsSingleNodeProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 1000),
        st.integers(2, 4),
        st.sampled_from(list(OverlapMode)),
    )
    def test_random_data_agreement(self, seed, workers, overlap):
        dataset, query = make_dataset(seed)
        single = make_database(dataset, "cluster")
        reference = {
            r.window
            for r in SWEngine(single, dataset.name, sample_fraction=0.5)
            .execute(query)
            .results
        }
        report = run_distributed(
            dataset,
            query,
            DistributedConfig(
                num_workers=workers,
                overlap=overlap,
                sample_fraction=0.5,
                search=SearchConfig(alpha=0.5),
            ),
        )
        assert {r.window for r in report.results} == reference
