"""Targeted tests of the distributed worker protocol (Section 5 mechanics)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    SWEngine,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.distributed import DistributedConfig, OverlapMode, run_distributed
from repro.distributed.coordinator import _build_worker
from repro.distributed.messages import CellRequest, Network
from repro.distributed.partitioning import plan_partitions
from repro.costs import DEFAULT_COST_MODEL
from repro.sampling import StratifiedSampler
from repro.storage import HeapTable, TableSchema
from repro.workloads import Dataset, make_database


def make_dataset(seed: int, n: int = 250) -> tuple[Dataset, SWQuery]:
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 12, n)
    y = rng.uniform(0, 12, n)
    v = rng.normal(20, 8, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    from repro.core import Grid, Rect

    grid = Grid(Rect.from_bounds([(0.0, 12.0), (0.0, 12.0)]), (1.0, 1.0))
    dataset = Dataset(
        name="rand",
        columns={"x": x, "y": y, "v": v},
        schema=schema,
        grid=grid,
    )
    query = SWQuery.build(
        dimensions=("x", "y"),
        area=[(0.0, 12.0), (0.0, 12.0)],
        steps=(1.0, 1.0),
        conditions=[
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 6),
            ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 22.0),
        ],
    )
    return dataset, query


class TestWorkerMechanics:
    def _one_worker(self, workers=2, wid=0):
        dataset, query = make_dataset(1)
        full_table = HeapTable(dataset.name, dataset.schema, dataset.columns, 8)
        sample = StratifiedSampler(0.5, seed=3).sample(full_table, dataset.grid)
        plan = plan_partitions(dataset.grid, workers)
        network = Network(workers, DEFAULT_COST_MODEL)
        config = DistributedConfig(num_workers=workers)
        worker = _build_worker(
            wid, dataset, query, plan, sample, full_table, network, config, DEFAULT_COST_MODEL
        )
        return worker, network, plan, query

    def test_seeds_only_own_anchors(self):
        worker, _, plan, _ = self._one_worker(workers=2, wid=0)
        lo, hi = plan.anchor_slab(0)
        entries = list(worker.queue.drain())
        assert entries, "worker should have seeded start windows"
        assert all(lo <= window.lo[0] < hi for _, window, _ in entries)

    def test_boundary_window_requests_remote_cells(self):
        worker, network, plan, _ = self._one_worker(workers=2, wid=0)
        boundary = plan.boundaries[1]
        from repro.core import Window

        # A window anchored just left of the boundary, spanning across it.
        window = Window((boundary - 1, 0), (boundary + 1, 2))
        worker._explore(window)
        assert window in worker._waiting
        assert network.pending(1) == 1

    def test_request_answered_after_local_read(self):
        worker0, network, plan, query = self._one_worker(workers=2, wid=0)
        # Build worker 1 against the same network.
        dataset, _ = make_dataset(1)
        full_table = HeapTable(dataset.name, dataset.schema, dataset.columns, 8)
        sample = StratifiedSampler(0.5, seed=3).sample(full_table, dataset.grid)
        config = DistributedConfig(num_workers=2)
        worker1 = _build_worker(
            1, dataset, query, plan, sample, full_table, network, config, DEFAULT_COST_MODEL
        )
        boundary = plan.boundaries[1]
        from repro.core import Window

        window = Window((boundary - 1, 0), (boundary + 1, 2))
        worker0._explore(window)
        # Worker 1 hasn't read anything: the request must be parked.
        worker1.advance_to(network.earliest_arrival(1))
        worker1._process_inbox()
        assert worker1._pending, "request should wait for local data"
        # After reading its cells, flushing answers the request.
        worker1.data.read_window(Window((boundary, 0), (boundary + 1, 2)))
        worker1._flush_pending()
        assert not worker1._pending
        assert network.pending(0) == 1  # the response is in flight

    def test_response_unparks_window(self):
        worker0, network, plan, query = self._one_worker(workers=2, wid=0)
        boundary = plan.boundaries[1]
        from repro.core import Window
        from repro.distributed.messages import CellResponse
        from repro.core.aggregates import CellStats
        from repro.storage.database import COUNT_KEY

        window = Window((boundary - 1, 0), (boundary + 1, 1))
        worker0._explore(window)
        assert window in worker0._waiting
        payloads = {
            (boundary, 0): {
                COUNT_KEY: CellStats(0, 0.0, float("inf"), float("-inf")),
            }
        }
        queue_before = len(worker0.queue)
        worker0._handle_response(CellResponse(1, payloads))
        assert window not in worker0._waiting
        assert len(worker0.queue) == queue_before + 1


class TestDistributedEqualsSingleNodeProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 1000),
        st.integers(2, 4),
        st.sampled_from(list(OverlapMode)),
    )
    def test_random_data_agreement(self, seed, workers, overlap):
        dataset, query = make_dataset(seed)
        single = make_database(dataset, "cluster")
        reference = {
            r.window
            for r in SWEngine(single, dataset.name, sample_fraction=0.5)
            .execute(query)
            .results
        }
        report = run_distributed(
            dataset,
            query,
            DistributedConfig(
                num_workers=workers,
                overlap=overlap,
                sample_fraction=0.5,
                search=SearchConfig(alpha=0.5),
            ),
        )
        assert {r.window for r in report.results} == reference


class TestNetworkEdgeCases:
    def _zero_latency(self):
        from repro.costs import CostModel

        return CostModel(network_latency_ms=0.0, network_per_cell_us=0.0)

    def test_same_timestamp_delivery_is_send_order(self):
        net = Network(2, self._zero_latency())
        first = CellRequest(0, ((1, 1),), msg_id=net.next_msg_id())
        second = CellRequest(0, ((2, 2),), msg_id=net.next_msg_id())
        third = CellRequest(0, ((3, 3),), msg_id=net.next_msg_id())
        for msg in (first, second, third):
            net.send(1, msg, sent_at=0.5)
        assert net.receive(1, 0.5) == [first, second, third]

    def test_zero_latency_arrives_at_send_time(self):
        net = Network(2, self._zero_latency())
        net.send(1, CellRequest(0, ((1, 1),)), sent_at=1.25)
        assert net.earliest_arrival(1) == 1.25
        # Not yet visible strictly before the send instant.
        assert net.receive(1, 1.2499) == []
        assert len(net.receive(1, 1.25)) == 1

    def test_inbox_drains_after_sender_completion(self):
        # Messages already in flight remain deliverable even if the
        # sender never acts again; a later poll drains them all at once.
        net = Network(2, DEFAULT_COST_MODEL)
        for i in range(4):
            net.send(1, CellRequest(0, ((i, 0),)), sent_at=0.001 * i)
        assert net.pending(1) == 4
        drained = net.receive(1, now=10.0)
        assert [m.cells[0][0] for m in drained] == [0, 1, 2, 3]
        assert net.pending(1) == 0
        assert net.earliest_arrival(1) is None

    def test_needs_at_least_one_worker(self):
        import pytest

        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Network(0, DEFAULT_COST_MODEL)
        with pytest.raises(ValueError):  # backwards-compatible lineage
            Network(0, DEFAULT_COST_MODEL)

    def test_mail_to_dead_worker_is_lost(self):
        net = Network(2, DEFAULT_COST_MODEL)
        net.send(1, CellRequest(0, ((1, 1),)), sent_at=0.0)
        net.mark_dead(1)
        assert net.is_dead(1)
        assert net.pending(1) == 0
        net.send(1, CellRequest(0, ((2, 2),)), sent_at=0.1)
        assert net.pending(1) == 0
        assert net.messages_lost == 2


class TestReliabilityLayer:
    def _worker_pair(self):
        dataset, query = make_dataset(1)
        full_table = HeapTable(dataset.name, dataset.schema, dataset.columns, 8)
        sample = StratifiedSampler(0.5, seed=3).sample(full_table, dataset.grid)
        plan = plan_partitions(dataset.grid, 2)
        network = Network(2, DEFAULT_COST_MODEL)
        config = DistributedConfig(num_workers=2)
        workers = [
            _build_worker(
                wid, dataset, query, plan, sample, full_table, network, config,
                DEFAULT_COST_MODEL,
            )
            for wid in range(2)
        ]
        return workers, network, plan

    def test_duplicate_delivery_is_ignored(self):
        from repro.core import Window

        (worker0, worker1), network, plan = self._worker_pair()
        boundary = plan.boundaries[1]
        window = Window((boundary - 1, 0), (boundary + 1, 1))
        worker0._explore(window)
        # Replay the exact same transmission (same msg_id) at the owner.
        [envelope] = network._inboxes[1]
        network._inboxes[1].append(
            type(envelope)(envelope.arrival, 10_000, envelope.message)
        )
        worker1.advance_to(envelope.arrival)
        worker1._process_inbox()
        assert worker1.duplicates_ignored == 1
        # The request itself was still handled exactly once.
        assert sum(len(c) for c in worker1._pending.values()) == len(
            envelope.message.cells
        )

    def test_unanswered_request_is_retransmitted_with_backoff(self):
        from repro.core import Window

        (worker0, worker1), network, plan = self._worker_pair()
        boundary = plan.boundaries[1]
        window = Window((boundary - 1, 0), (boundary + 1, 1))
        worker0._explore(window)
        assert len(worker0._outstanding) == 1
        [entry] = worker0._outstanding.values()
        first_deadline = entry.deadline
        # Let the deadline lapse without an answer: a retry must go out
        # with a fresh message id and a doubled timeout.
        worker0.advance_to(first_deadline)
        worker0._check_timeouts()
        assert worker0.retries == 1
        [entry2] = worker0._outstanding.values()
        assert entry2.attempt == 1
        assert entry2.deadline - first_deadline > (
            first_deadline - 0.0
        ) * 0.99  # doubled timeout (measured from the retry instant)
        assert network.pending(1) == 2  # original + retransmission

    def test_next_time_covers_retry_deadline(self):
        from repro.core import Window

        (worker0, _worker1), _network, plan = self._worker_pair()
        boundary = plan.boundaries[1]
        window = Window((boundary - 1, 0), (boundary + 1, 1))
        worker0._explore(window)
        list(worker0.queue.drain())
        [entry] = worker0._outstanding.values()
        # With an empty queue and nothing arriving, the worker must still
        # wake up at its retransmission deadline rather than quiesce.
        assert worker0.next_time() == entry.deadline
        assert not worker0.is_done()
