"""Property-based tests for Data Manager invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContentObjective, Grid, Rect, Window, col
from repro.core.datamanager import DataManager
from repro.sampling import StratifiedSampler
from repro.storage import Database, HeapTable, TableSchema


def build_dm(seed: int, fraction: float = 0.5):
    rng = np.random.default_rng(seed)
    n = 300
    x = rng.uniform(0, 8, n)
    y = rng.uniform(0, 8, n)
    v = rng.normal(10, 4, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    db = Database()
    db.register(HeapTable("t", schema, {"x": x, "y": y, "v": v}, 8))
    grid = Grid(Rect.from_bounds([(0.0, 8.0), (0.0, 8.0)]), (1.0, 1.0))
    obj = ContentObjective.of("avg", col("v"))
    sample = StratifiedSampler(fraction, seed=seed + 1).sample(db.table("t"), grid)
    return DataManager(db, "t", grid, [obj], sample), obj, grid


@st.composite
def boxes(draw, size=8):
    lx = draw(st.integers(0, size - 1))
    ly = draw(st.integers(0, size - 1))
    hx = draw(st.integers(lx + 1, size))
    hy = draw(st.integers(ly + 1, size))
    return Window((lx, ly), (hx, hy))


class TestDataManagerInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100), st.lists(boxes(), min_size=1, max_size=6))
    def test_unread_monotone_under_reads(self, seed, windows):
        dm, _, _ = build_dm(seed)
        total = Window((0, 0), (8, 8))
        previous = dm.unread_objects(total)
        for window in windows:
            dm.read_window(window)
            current = dm.unread_objects(total)
            assert current <= previous + 1e-9
            previous = current

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100), boxes(), boxes())
    def test_subwindows_exact_after_read(self, seed, outer, inner):
        dm, obj, _ = build_dm(seed)
        dm.read_window(outer)
        shared = outer.intersection(inner)
        if shared is None:
            return
        assert dm.is_read(shared)
        # Exact value matches a direct recomputation from the table.
        table = dm.database.table("t")
        coords = table.coordinates()
        rect = shared.rect(dm.grid)
        mask = np.ones(coords.shape[0], dtype=bool)
        for d in range(2):
            mask &= (coords[:, d] >= rect.lower[d]) & (coords[:, d] < rect.upper[d])
        expected = float(table.column("v")[mask].mean()) if mask.any() else None
        got = dm.exact_value(obj, shared)
        if expected is None:
            assert np.isnan(got)
        else:
            assert got == pytest.approx(expected)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100), st.integers(0, 7), st.integers(1, 7))
    def test_count_additive_over_split(self, seed, row, split):
        dm, _, _ = build_dm(seed)
        whole = Window((0, 0), (8, 8))
        left = Window((0, 0), (split, 8))
        right = Window((split, 0), (8, 8)) if split < 8 else None
        total = dm.window_count(whole)
        parts = dm.window_count(left) + (dm.window_count(right) if right else 0.0)
        assert parts == pytest.approx(total)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100), boxes())
    def test_full_sample_estimates_match_exact(self, seed, window):
        dm, obj, _ = build_dm(seed, fraction=1.0)
        estimate = dm.estimate(obj, window)
        dm.read_window(window)
        exact = dm.exact_value(obj, window)
        if np.isnan(exact):
            assert np.isnan(estimate)
        else:
            assert estimate == pytest.approx(exact)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100), st.lists(boxes(), min_size=2, max_size=5))
    def test_version_strictly_increases_per_effective_read(self, seed, windows):
        dm, _, _ = build_dm(seed)
        version = dm.version
        for window in windows:
            scan = dm.read_window(window)
            if scan is not None:
                assert dm.version == version + 1
                version = dm.version
            else:
                assert dm.version == version
