"""Semantic-cache semantics: signatures, sharing rules, eviction, invalidation.

The soundness rules under test (DESIGN.md §12): cell summaries share
across placements of the same rows (content signature) but samples share
only between identical heap files (physical signature); a payload is
only a hit for a query that needs no objective the payload lacks; LRU
eviction never touches pinned bindings; and a table rebind drops every
entry under the old signature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SearchConfig, SWEngine
from repro.obs import MetricsRegistry
from repro.serve import (
    SemanticCache,
    grid_signature,
    physical_signature,
    table_signature,
)
from repro.workloads import (
    make_database,
    make_table,
    synthetic_dataset,
    synthetic_query,
)

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset("medium", scale=0.15, seed=5)


class TestSignatures:
    def test_table_signature_is_placement_invariant(self, dataset):
        clustered = make_table(dataset, "cluster")
        shuffled = make_table(dataset, "random")
        assert table_signature(clustered) == table_signature(shuffled)
        assert physical_signature(clustered) != physical_signature(shuffled)

    def test_table_signature_separates_content(self, dataset):
        other = synthetic_dataset("medium", scale=0.15, seed=6)
        assert table_signature(make_table(dataset, "cluster")) != table_signature(
            make_table(other, "cluster")
        )

    def test_physical_signature_tracks_block_size(self, dataset):
        a = make_table(dataset, "cluster", tuples_per_block=8)
        b = make_table(dataset, "cluster", tuples_per_block=16)
        assert physical_signature(a) != physical_signature(b)
        assert table_signature(a) == table_signature(b)

    def test_grid_signature_tracks_geometry(self, dataset):
        other = synthetic_dataset("medium", scale=0.3, seed=5)
        assert grid_signature(dataset.grid) == grid_signature(dataset.grid)
        assert grid_signature(dataset.grid) != grid_signature(other.grid)

    def test_binding_memoizes_per_table(self, dataset):
        cache = SemanticCache()
        table = make_table(dataset, "cluster")
        first = cache.binding(table, dataset.grid)
        assert cache.binding(table, dataset.grid) == first
        assert first == (table_signature(table), grid_signature(dataset.grid))


class TestConsultAndPublish:
    def test_require_filters_incomplete_payloads(self):
        cache = SemanticCache()
        cache.publish("t:x", "g:y", [(0, {"avg(a)": "s0"}), (1, {"avg(a)": "s1", "avg(b)": "s2"})])
        hits = cache.consult("t:x", "g:y", [0, 1, 2], require=("avg(a)", "avg(b)"))
        assert set(hits) == {1}
        assert cache.consult("t:x", "g:y", [0, 1], require=("avg(a)",)).keys() == {0, 1}

    def test_refresh_merges_objectives(self):
        cache = SemanticCache()
        cache.publish("t:x", "g:y", [(0, {"avg(a)": "s0"})])
        cache.publish("t:x", "g:y", [(0, {"avg(b)": "s1"})])
        hits = cache.consult("t:x", "g:y", [0], require=("avg(a)", "avg(b)"))
        assert hits[0] == {"avg(a)": "s0", "avg(b)": "s1"}

    def test_counters(self):
        registry = MetricsRegistry()
        cache = SemanticCache(metrics=registry)
        cache.publish("t:x", "g:y", [(i, {"k": i}) for i in range(3)])
        cache.consult("t:x", "g:y", [0, 1, 5], require=("k",))
        counters = registry.snapshot()["counters"]
        assert counters["serve.cache.inserted_cells"] == 3
        assert counters["serve.cache.lookup_cells"] == 3
        assert counters["serve.cache.hit_cells"] == 2
        assert counters["serve.cache.miss_cells"] == 1


class TestEviction:
    def test_lru_eviction_under_budget(self):
        cache = SemanticCache(budget_cells=3)
        cache.publish("t:x", "g:y", [(i, {"k": i}) for i in range(3)])
        cache.consult("t:x", "g:y", [0], require=("k",))  # 0 becomes MRU
        cache.publish("t:x", "g:y", [(9, {"k": 9})])
        assert len(cache) == 3
        assert set(cache.consult("t:x", "g:y", [0, 1, 2, 9])) == {0, 2, 9}

    def test_pin_blocks_eviction_until_unpin(self):
        cache = SemanticCache(budget_cells=2)
        cache.pin("t:x", "g:y")
        cache.publish("t:x", "g:y", [(i, {"k": i}) for i in range(4)])
        assert len(cache) == 4  # pinned bindings may exceed the budget
        cache.publish("t:z", "g:y", [(0, {"k": 0})])
        assert set(cache.consult("t:x", "g:y", [0, 1, 2, 3])) == {0, 1, 2, 3}
        assert cache.consult("t:z", "g:y", [0]) == {}  # unpinned entry evicted
        cache.unpin("t:x", "g:y")
        assert len(cache) == 2

    def test_multiple_pinned_bindings_under_pressure(self):
        """Several live sessions pin at once; only unpinned cells pay."""
        cache = SemanticCache(budget_cells=4)
        cache.pin("t:a", "g:1")
        cache.pin("t:b", "g:1")
        cache.publish("t:a", "g:1", [(i, {"k": i}) for i in range(3)])
        cache.publish("t:b", "g:1", [(i, {"k": i}) for i in range(3)])
        cache.publish("t:c", "g:1", [(i, {"k": i}) for i in range(2)])
        # Both pinned bindings survive intact; the unpinned one is the
        # only eviction candidate and the pins already exceed the budget.
        assert set(cache.consult("t:a", "g:1", [0, 1, 2])) == {0, 1, 2}
        assert set(cache.consult("t:b", "g:1", [0, 1, 2])) == {0, 1, 2}
        assert cache.consult("t:c", "g:1", [0, 1]) == {}

    def test_partial_unpin_evicts_only_released_binding(self):
        cache = SemanticCache(budget_cells=3)
        cache.pin("t:a", "g:1")
        cache.pin("t:b", "g:1")
        cache.publish("t:a", "g:1", [(i, {"k": i}) for i in range(3)])
        cache.publish("t:b", "g:1", [(i, {"k": i}) for i in range(3)])
        assert len(cache) == 6
        cache.unpin("t:a", "g:1")
        # Back to budget by shedding t:a cells only; t:b stays pinned.
        assert len(cache) == 3
        assert set(cache.consult("t:b", "g:1", [0, 1, 2])) == {0, 1, 2}
        cache.unpin("t:b", "g:1")
        assert len(cache) == 3  # already within budget: unpin is a no-op

    def test_evicted_cells_counter_on_publish_and_unpin(self):
        registry = MetricsRegistry()
        cache = SemanticCache(budget_cells=2, metrics=registry)
        cache.publish("t:x", "g:y", [(i, {"k": i}) for i in range(5)])
        counters = registry.snapshot()["counters"]
        assert counters["serve.cache.evicted_cells"] == 3
        cache.pin("t:x", "g:z")
        cache.publish("t:x", "g:z", [(i, {"k": i}) for i in range(4)])
        # The publish sheds the two unpinned g:y survivors; the four
        # pinned g:z cells ride over budget until the unpin releases them.
        counters = registry.snapshot()["counters"]
        assert counters["serve.cache.evicted_cells"] == 3 + 2
        cache.unpin("t:x", "g:z")
        counters = registry.snapshot()["counters"]
        assert counters["serve.cache.evicted_cells"] == 3 + 2 + 2
        gauges = registry.snapshot()["gauges"]
        assert gauges["serve.cache.resident_cells"] == float(len(cache)) == 2.0

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="budget_cells"):
            SemanticCache(budget_cells=0)


class TestInvalidation:
    def test_invalidate_table_drops_all_grids(self):
        cache = SemanticCache()
        cache.publish("t:x", "g:1", [(0, {"k": 0})])
        cache.publish("t:x", "g:2", [(0, {"k": 0})])
        cache.publish("t:z", "g:1", [(0, {"k": 0})])
        cache.pin("t:x", "g:1")
        assert cache.invalidate_table("t:x") == 2
        assert len(cache) == 1
        assert cache.stats()["pinned_bindings"] == 0
        assert cache.consult("t:z", "g:1", [0]).keys() == {0}

    def test_rebind_detaches_and_invalidates(self, dataset):
        """DataManager.rebind_table must drop the old signature's entries."""
        query = synthetic_query(dataset)
        cache = SemanticCache()
        engine = SWEngine(make_database(dataset, "cluster"), dataset.name)
        engine.attach_semantic_cache(cache)
        search = engine.prepare(query, SearchConfig(alpha=1.0))
        search.run()
        tsig = table_signature(engine.database.table(dataset.name))
        assert any(k[0] == tsig for k in cache._cells)

        from repro.storage.table import HeapTable

        donor = make_table(dataset, "random")
        replacement = HeapTable(
            "adopted",
            donor.schema,
            {name: donor.column(name) for name in donor.schema.columns},
            tuples_per_block=donor.tuples_per_block,
        )
        search.data.rebind_table(replacement)
        assert not any(k[0] == tsig for k in cache._cells)
        assert search.data._cache is None  # detached: no stale promotion


class TestSampleStore:
    def test_samples_share_only_identical_placements(self, dataset):
        query = synthetic_query(dataset)
        cache = SemanticCache()
        registry = MetricsRegistry()
        cache.attach_observability(metrics=registry)

        first = SWEngine(make_database(dataset, "cluster"), dataset.name)
        first.attach_semantic_cache(cache)
        sample = first.sample_for(query)

        twin = SWEngine(make_database(dataset, "cluster"), dataset.name)
        twin.attach_semantic_cache(cache)
        shared = twin.sample_for(query)
        assert shared is sample  # identical placement: shared object

        shuffled = SWEngine(make_database(dataset, "random"), dataset.name)
        shuffled.attach_semantic_cache(cache)
        rebuilt = shuffled.sample_for(query)
        assert rebuilt is not sample
        assert np.array_equal(
            np.sort(sample.rows), np.sort(rebuilt.rows)
        ) or sample.rows.shape == rebuilt.rows.shape

        counters = registry.snapshot()["counters"]
        assert counters["serve.cache.sample_hits"] == 1
        assert counters["serve.cache.sample_stores"] == 2
