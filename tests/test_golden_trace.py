"""Golden-trace regression: replay the pinned corpus event by event.

Each case in :mod:`tests.golden_cases` reruns its seeded query and must
reproduce the pinned ``tests/golden/*.json`` payload exactly — the trace
timeline diffed event by event (so a drift reports its first divergence,
not a blob mismatch), the metrics block byte-for-byte through the JSON
exporter, and the result set in full.  After an intentional behavior
change, regenerate with ``python tools/regen_golden.py`` and review the
diff.
"""

from __future__ import annotations

import json

import pytest

from repro.io import metrics_to_json
from repro.obs import InvariantAuditor

from .golden_cases import CASES, golden_path, serialize

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def payloads():
    """Each case executed once; the expensive part of the module."""
    return {name: build() for name, build in CASES.items()}


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_case_matches(name, payloads):
    path = golden_path(name)
    assert path.exists(), f"missing {path}; run: python tools/regen_golden.py {name}"
    golden = json.loads(path.read_text())
    fresh = json.loads(serialize(payloads[name]))

    # Event-by-event: the first divergence is the useful signal.
    golden_trace, fresh_trace = golden.pop("trace"), fresh.pop("trace")
    for i, (want, got) in enumerate(zip(golden_trace, fresh_trace)):
        assert got == want, (
            f"{name}: trace diverges at event {i}/{len(golden_trace)}:\n"
            f"  golden: {want}\n  fresh:  {got}"
        )
    assert len(fresh_trace) == len(golden_trace), (
        f"{name}: trace length {len(fresh_trace)} != golden {len(golden_trace)}"
    )

    # Metrics: byte equality through the deterministic JSON exporter.
    golden_metrics, fresh_metrics = golden.pop("metrics"), fresh.pop("metrics")
    assert metrics_to_json(fresh_metrics) == metrics_to_json(golden_metrics), (
        f"{name}: metrics snapshot drifted"
    )

    # Everything else (results, headline numbers, worker snapshots).
    assert fresh == golden


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_case_passes_audit(name, payloads):
    report = InvariantAuditor(payloads[name]["metrics"]).report()
    assert report["ok"], f"{name}: {report['violations']}"
    assert report["checked"] >= 15


def test_golden_files_are_canonical():
    """Pinned files are exactly what serialize() emits (no hand edits)."""
    for name in CASES:
        text = golden_path(name).read_text()
        assert text == serialize(json.loads(text)), f"{name}: not canonical JSON"
