"""Tests for STR bulk loading and the str placement ablation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import RTree
from repro.storage.placement import index_order, order_rows, str_order


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(91)
    return rng.uniform(0, 10, (500, 2))


def leaves_touched(tree, lows, highs):
    count = 0
    for mins, maxs in tree.leaf_mbrs():
        if all(mi < h and ma >= l for mi, ma, l, h in zip(mins, maxs, lows, highs)):
            count += 1
    return count


class TestStrBulkLoad:
    def test_search_matches_brute_force(self, points):
        tree = RTree.bulk_load_str(points, max_entries=16)
        lows, highs = (2.0, 3.0), (5.0, 6.0)
        expected = sorted(
            i
            for i, p in enumerate(points)
            if lows[0] <= p[0] < highs[0] and lows[1] <= p[1] < highs[1]
        )
        assert sorted(tree.search(lows, highs)) == expected

    def test_size_and_leaf_order(self, points):
        tree = RTree.bulk_load_str(points, max_entries=16)
        assert tree.size == 500
        assert sorted(tree.leaf_order()) == list(range(500))

    def test_leaves_are_full(self, points):
        tree = RTree.bulk_load_str(points, max_entries=16)
        sizes = [len(n.payloads) for n in tree._dfs() if n.leaf]
        # Packed loading: all leaves full except possibly the last few.
        assert sum(sizes) == 500
        assert sum(1 for s in sizes if s == 16) >= len(sizes) - 2

    def test_empty_input(self):
        tree = RTree.bulk_load_str(np.empty((0, 2)))
        assert tree.size == 0
        assert tree.search((0, 0), (1, 1)) == []

    def test_1d_input(self):
        pts = np.array([[3.0], [1.0], [2.0], [5.0]])
        tree = RTree.bulk_load_str(pts, max_entries=4)
        assert sorted(tree.search((1.5,), (5.0,))) == [0, 2]

    def test_str_beats_insertion_on_query_fanout(self, points):
        """The quality gap justifying the -ind vs STR ablation."""
        packed = RTree.bulk_load_str(points, max_entries=16)
        inserted = RTree(2, max_entries=16)
        rng = np.random.default_rng(92)
        for i in rng.permutation(500):
            inserted.insert(tuple(points[i]), int(i))
        total_packed = total_inserted = 0
        for seed in range(40):
            r = np.random.default_rng(seed)
            lo = r.uniform(0, 8, 2)
            hi = lo + 2
            total_packed += leaves_touched(packed, lo, hi)
            total_inserted += leaves_touched(inserted, lo, hi)
        assert total_packed < total_inserted

    def test_multilevel_tree(self):
        rng = np.random.default_rng(93)
        pts = rng.uniform(0, 1, (2000, 2))
        tree = RTree.bulk_load_str(pts, max_entries=8)
        assert tree.height >= 3
        assert sorted(tree.search((0, 0), (1.01, 1.01))) == list(range(2000))


class TestStrPlacement:
    def test_str_order_is_permutation(self, points):
        order = str_order(points)
        assert sorted(order) == list(range(500))

    def test_dispatch(self, points):
        np.testing.assert_array_equal(order_rows("str", points), str_order(points))

    def test_str_locality_at_least_index(self, points):
        """STR ordering's neighbor distance should not exceed insertion's."""
        str_gap = np.linalg.norm(
            np.diff(points[str_order(points)], axis=0), axis=1
        ).mean()
        ins_gap = np.linalg.norm(
            np.diff(points[index_order(points)], axis=0), axis=1
        ).mean()
        assert str_gap < ins_gap * 1.25
