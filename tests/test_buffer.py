"""Unit tests for the LRU buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimClock
from repro.costs import CostModel
from repro.storage import BufferPool, SimulatedDisk


@pytest.fixture()
def pool():
    disk = SimulatedDisk(100, CostModel(seek_ms=1.0, transfer_ms=0.1), SimClock())
    return BufferPool(4, disk), disk


class TestBufferPool:
    def test_miss_then_hit(self, pool):
        buf, disk = pool
        buf.access([1, 2])
        assert buf.misses == 2
        buf.access([1, 2])
        assert buf.hits == 2
        assert disk.blocks_read == 2  # second access served from pool

    def test_eviction_lru(self, pool):
        buf, disk = pool
        buf.access([1])
        buf.access([2])
        buf.access([3])
        buf.access([4])
        buf.access([1])  # refresh 1 -> 2 is now LRU
        buf.access([5])  # evicts 2
        assert buf.contains(1)
        assert not buf.contains(2)
        buf.access([2])  # miss -> disk re-read
        assert disk.blocks_reread == 1

    def test_capacity_respected(self, pool):
        buf, _ = pool
        buf.access(list(range(10)))
        assert buf.size == 4

    def test_elapsed_zero_on_full_hit(self, pool):
        buf, _ = pool
        buf.access([1, 2])
        assert buf.access([1, 2]) == 0.0

    def test_empty_access(self, pool):
        buf, _ = pool
        assert buf.access([]) == 0.0
        assert buf.hits == 0 and buf.misses == 0

    def test_duplicate_ids_counted_once(self, pool):
        buf, disk = pool
        buf.access([3, 3, 3])
        assert buf.misses == 1
        assert disk.blocks_read == 1

    def test_numpy_input(self, pool):
        buf, _ = pool
        buf.access(np.array([7, 8]))
        assert buf.contains(7)

    def test_reset(self, pool):
        buf, _ = pool
        buf.access([1, 2])
        buf.reset()
        assert buf.size == 0
        assert buf.hits == 0 and buf.misses == 0

    def test_positive_capacity_required(self, pool):
        _, disk = pool
        with pytest.raises(ValueError, match="positive"):
            BufferPool(0, disk)

    def test_misses_fetched_in_one_request(self, pool):
        buf, disk = pool
        buf.access([5, 1, 3])
        assert disk.requests == 1
