"""Unit tests for the LRU buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import SimClock
from repro.costs import CostModel
from repro.storage import BufferPool, SimulatedDisk


@pytest.fixture()
def pool():
    disk = SimulatedDisk(100, CostModel(seek_ms=1.0, transfer_ms=0.1), SimClock())
    return BufferPool(4, disk), disk


class TestBufferPool:
    def test_miss_then_hit(self, pool):
        buf, disk = pool
        buf.access([1, 2])
        assert buf.misses == 2
        buf.access([1, 2])
        assert buf.hits == 2
        assert disk.blocks_read == 2  # second access served from pool

    def test_eviction_lru(self, pool):
        buf, disk = pool
        buf.access([1])
        buf.access([2])
        buf.access([3])
        buf.access([4])
        buf.access([1])  # refresh 1 -> 2 is now LRU
        buf.access([5])  # evicts 2
        assert buf.contains(1)
        assert not buf.contains(2)
        buf.access([2])  # miss -> disk re-read
        assert disk.blocks_reread == 1

    def test_capacity_respected(self, pool):
        buf, _ = pool
        buf.access(list(range(10)))
        assert buf.size == 4

    def test_elapsed_zero_on_full_hit(self, pool):
        buf, _ = pool
        buf.access([1, 2])
        assert buf.access([1, 2]) == 0.0

    def test_empty_access(self, pool):
        buf, _ = pool
        assert buf.access([]) == 0.0
        assert buf.hits == 0 and buf.misses == 0

    def test_duplicate_ids_counted_once(self, pool):
        buf, disk = pool
        buf.access([3, 3, 3])
        assert buf.misses == 1
        assert disk.blocks_read == 1

    def test_numpy_input(self, pool):
        buf, _ = pool
        buf.access(np.array([7, 8]))
        assert buf.contains(7)

    def test_reset(self, pool):
        buf, _ = pool
        buf.access([1, 2])
        buf.reset()
        assert buf.size == 0
        assert buf.hits == 0 and buf.misses == 0

    def test_positive_capacity_required(self, pool):
        _, disk = pool
        with pytest.raises(ValueError, match="positive"):
            BufferPool(0, disk)

    def test_misses_fetched_in_one_request(self, pool):
        buf, disk = pool
        buf.access([5, 1, 3])
        assert disk.requests == 1


class TestMemoryBudget:
    """Eviction behavior under a shrinking memory budget (resize/protect)."""

    def test_resize_shrink_evicts_lru_first(self, pool):
        buf, _ = pool
        buf.access([1, 2, 3, 4])
        buf.access([1])  # 1 is now most recent; LRU order: 2, 3, 4, 1
        evicted = buf.resize(2)
        assert evicted == 2
        assert buf.capacity == 2 and buf.size == 2
        assert not buf.contains(2) and not buf.contains(3)
        assert buf.contains(4) and buf.contains(1)

    def test_resize_grow_keeps_contents(self, pool):
        buf, _ = pool
        buf.access([1, 2, 3, 4])
        assert buf.resize(8) == 0
        assert buf.size == 4 and buf.capacity == 8
        buf.access([5, 6, 7, 8])
        assert buf.size == 8  # no eviction until the new budget is hit

    def test_resize_spares_protected_blocks(self, pool):
        buf, _ = pool
        buf.access([1, 2, 3, 4])
        buf.protect(2)
        buf.protect(3)
        evicted = buf.resize(2)
        # LRU-unprotected go first (1, then 4); the pins survive.
        assert evicted == 2
        assert buf.contains(2) and buf.contains(3)
        assert not buf.contains(1) and not buf.contains(4)

    def test_resize_stops_when_only_pins_remain(self, pool):
        buf, _ = pool
        buf.access([1, 2, 3])
        for b in (1, 2, 3):
            buf.protect(b)
        evicted = buf.resize(1)
        # Pinned pages are never dropped, even over budget.
        assert evicted == 0
        assert buf.size == 3 and buf.capacity == 1

    def test_access_eviction_respects_pins(self, pool):
        buf, _ = pool
        buf.access([1, 2, 3, 4])
        buf.protect(1)
        buf.access([5])  # over capacity: evicts the oldest *unprotected* (2)
        assert buf.contains(1)
        assert not buf.contains(2)

    def test_resize_rejects_nonpositive_budget(self, pool):
        buf, _ = pool
        with pytest.raises(ValueError, match="positive"):
            buf.resize(0)

    def test_unprotect_makes_block_evictable_again(self, pool):
        buf, _ = pool
        buf.access([1, 2])
        buf.protect(1)
        buf.unprotect(1)
        assert buf.resize(1) == 1
        assert not buf.contains(1)  # 1 was LRU and no longer pinned

    def test_engine_applies_memory_budget_blocks(self):
        from repro.core import SearchConfig, SWEngine
        from repro.workloads import make_database, synthetic_dataset, synthetic_query

        dataset = synthetic_dataset("high", scale=0.1, seed=5)
        query = synthetic_query(dataset)
        database = make_database(dataset, "cluster")
        engine = SWEngine(database, dataset.name, sample_fraction=0.1)
        engine.prepare(query, SearchConfig(alpha=1.0, memory_budget_blocks=16))
        assert database.buffer(dataset.name).capacity == 16
        report = engine.execute(
            query, SearchConfig(alpha=1.0, memory_budget_blocks=16)
        )
        buf = database.buffer(dataset.name)
        assert buf.size <= 16  # the budget held throughout the run
        assert report.results  # and the query still completes
