"""Invariant audit sweep: every suite workload's canonical query.

The tentpole contract — metrics that stay mutually consistent — is only
credible if it holds across the whole workload matrix, not just the
queries the other tests happen to run.  This sweep executes each bundled
workload's canonical query (the same pairs the CLI exposes) fully
instrumented and requires a clean :class:`InvariantAuditor` report, plus
a distributed pass over the synthetic workload.
"""

from __future__ import annotations

import pytest

from repro.cli import _load_workload
from repro.core import SearchConfig, SWEngine
from repro.distributed import DistributedConfig, run_distributed
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.workloads import make_database

WORKLOADS = ("synth-low", "synth-medium", "synth-high", "sdss", "stocks")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_serial_suite_query_audits_clean(workload):
    dataset, query = _load_workload(workload, scale=0.2, seed=101)
    database = make_database(dataset, "cluster")
    registry = MetricsRegistry()
    database.attach_metrics(registry)
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    engine.execute(query, SearchConfig(alpha=1.0))
    report = InvariantAuditor(registry).report()
    assert report["ok"], f"{workload}: {report['violations']}"
    assert report["checked"] >= 15


@pytest.mark.parametrize("num_workers", (2, 4))
def test_distributed_suite_query_audits_clean(num_workers):
    dataset, query = _load_workload("synth-high", scale=0.2, seed=101)
    registry = MetricsRegistry()
    report = run_distributed(
        dataset,
        query,
        DistributedConfig(
            num_workers=num_workers,
            overlap="no_overlap",
            placement="cluster",
            search=SearchConfig(alpha=1.0),
            sample_fraction=0.1,
        ),
        metrics=registry,
    )
    merged = InvariantAuditor(registry).report()
    assert merged["ok"], f"merged: {merged['violations']}"
    # Each worker's own registry must audit clean in isolation too.
    for wid, snapshot in enumerate(report.worker_metrics):
        worker = InvariantAuditor(snapshot).report()
        assert worker["ok"], f"worker {wid}: {worker['violations']}"
