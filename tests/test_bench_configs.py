"""Tests for the benchmark scale configuration and fixture caching."""

from __future__ import annotations

import pytest

from repro.bench import bench_scale, fresh_database, get_synthetic, get_table


class TestBenchScale:
    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale().name == "small"

    @pytest.mark.parametrize("name", ["tiny", "small", "paper"])
    def test_named_scales(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_BENCH_SCALE", name)
        scale = bench_scale()
        assert scale.name == name
        assert 0 < scale.synthetic_scale <= 1
        assert 0 < scale.sample_fraction <= 1

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "TINY")
        assert bench_scale().name == "tiny"

    def test_unknown_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError, match="REPRO_BENCH_SCALE"):
            bench_scale()

    def test_scale_ordering(self, monkeypatch):
        sizes = {}
        for name in ("tiny", "small", "paper"):
            monkeypatch.setenv("REPRO_BENCH_SCALE", name)
            sizes[name] = bench_scale().synthetic_scale
        assert sizes["tiny"] < sizes["small"] < sizes["paper"]


class TestFixtureCaching:
    def test_dataset_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert get_synthetic("high") is get_synthetic("high")

    def test_table_cached_per_placement(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        dataset = get_synthetic("high")
        assert get_table(dataset, "cluster") is get_table(dataset, "cluster")
        assert get_table(dataset, "cluster") is not get_table(dataset, "hilbert")

    def test_fresh_database_isolated(self, monkeypatch):
        import numpy as np

        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        table = get_table(get_synthetic("high"), "cluster")
        db1 = fresh_database(table)
        db2 = fresh_database(table)
        db1.disk(table.name).read(np.array([0]))
        assert db2.disk(table.name).blocks_read == 0
        assert db1.clock is not db2.clock


class TestSessionMetrics:
    def test_fresh_database_attaches_registry(self, monkeypatch):
        import numpy as np

        from repro.bench import drain_session_metrics

        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        table = get_table(get_synthetic("high"), "cluster")
        drain_session_metrics()  # clear what other tests accumulated
        instrumented = fresh_database(table)
        bare = fresh_database(table, metrics=False)
        assert instrumented.metrics is not None
        assert instrumented.metrics.clock is instrumented.clock
        assert bare.metrics is None
        instrumented.disk(table.name).read(np.array([0]))
        snapshot = drain_session_metrics()
        assert snapshot["counters"]["disk.blocks_read"] >= 1.0
        # A drain empties the pool; registries are never reported twice.
        assert drain_session_metrics() is None

    def test_emit_json_ships_and_drains_metrics_block(self, monkeypatch, capsys):
        import json

        from repro.bench import drain_session_metrics, emit_json

        monkeypatch.delenv("REPRO_BENCH_JSON", raising=False)
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        drain_session_metrics()
        fresh_database(get_table(get_synthetic("high"), "cluster"))
        record = json.loads(emit_json("bench_configs_probe", {"x": 1}))
        assert record["x"] == 1
        assert set(record["metrics"]) == {"counters", "gauges", "histograms"}
        again = json.loads(emit_json("bench_configs_probe", {"x": 2}))
        assert "metrics" not in again
        explicit = json.loads(emit_json("bench_configs_probe", {"x": 3}, metrics=None))
        assert "metrics" not in explicit
        capsys.readouterr()  # swallow the BENCH_JSON stdout lines
