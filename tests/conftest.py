"""Shared fixtures: small deterministic datasets and databases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Grid, Rect
from repro.storage import Database, HeapTable, TableSchema
from repro.workloads import make_database, synthetic_dataset, synthetic_query


class BackendPair:
    """Twin databases — simulator reference, SQLite candidate — for one input.

    The differential harness's central object: build the *same* logical
    database against both storage backends and the caller asserts the
    two runs are byte-identical.  ``specs`` orders the pair (reference
    first); both members of every returned tuple follow that order.
    """

    specs = ("simulator", "sqlite:")

    def databases(self, table, **db_kwargs) -> tuple[Database, Database]:
        """Two fresh databases, each registering ``table`` on its backend."""
        out = []
        for spec in self.specs:
            db = Database(backend=spec, **db_kwargs)
            db.register(table)
            out.append(db)
        return tuple(out)

    def databases_for(self, dataset, placement="cluster", **kwargs) -> tuple[Database, Database]:
        """Two fresh workload databases over one dataset/placement."""
        return tuple(
            make_database(dataset, placement, backend=spec, **kwargs)
            for spec in self.specs
        )


@pytest.fixture(scope="session")
def backend_pair() -> BackendPair:
    """The simulator-vs-SQLite backend pair used by the differential suite."""
    return BackendPair()


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small high-spread synthetic dataset (session-cached)."""
    return synthetic_dataset("high", scale=0.2, seed=5)


@pytest.fixture(scope="session")
def tiny_query(tiny_dataset):
    """The paper's synthetic query over the tiny dataset."""
    return synthetic_query(tiny_dataset)


@pytest.fixture()
def tiny_db(tiny_dataset):
    """A fresh clustered-placement database over the tiny dataset."""
    return make_database(tiny_dataset, "cluster")


@pytest.fixture()
def grid_10x10():
    """A unit 10x10 grid over [0, 10)^2."""
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


@pytest.fixture()
def small_table():
    """A 600-row 2-D table with a value column, deterministic."""
    rng = np.random.default_rng(42)
    n = 600
    x = rng.uniform(0, 10, n)
    y = rng.uniform(0, 10, n)
    v = rng.normal(25, 5, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    return HeapTable("pts", schema, {"x": x, "y": y, "v": v}, tuples_per_block=16)


@pytest.fixture()
def small_db(small_table):
    """A database registering the small table."""
    db = Database()
    db.register(small_table)
    return db
