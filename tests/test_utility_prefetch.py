"""Unit tests for utility computation and prefetching (Sections 4.2-4.3)."""

from __future__ import annotations


import pytest

from repro.core import (
    ComparisonOp,
    ConditionSet,
    ContentCondition,
    ContentObjective,
    Grid,
    PrefetchState,
    PrefetchStrategy,
    Rect,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    Window,
    col,
    prefetch_extend,
)
from repro.core.datamanager import DataManager
from repro.core.utility import UtilityModel
from repro.sampling import StratifiedSampler


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


@pytest.fixture()
def dm(small_db, grid):
    obj = ContentObjective.of("avg", col("v"))
    sample = StratifiedSampler(1.0, seed=31).sample(small_db.table("pts"), grid)
    return DataManager(small_db, "pts", grid, [obj], sample)


def conditions(*conds, ndim=2):
    return ConditionSet.of(conds, ndim)


class TestCost:
    def test_cost_formula(self, dm, grid):
        """C_w = |w|_nc * m / n."""
        model = UtilityModel(conditions(), dm)
        w = Window((2, 2), (4, 4))
        expected = dm.unread_objects(w) * grid.num_cells / dm.total_objects
        assert model.cost(w) == pytest.approx(expected)

    def test_cost_drops_after_read(self, dm):
        model = UtilityModel(conditions(), dm)
        w = Window((2, 2), (4, 4))
        before = model.cost(w)
        dm.read_window(Window((2, 2), (3, 4)))  # half the window
        after = model.cost(w)
        assert 0 < after < before
        dm.read_window(w)
        assert model.cost(w) == 0.0

    def test_k_defaults_to_m(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        assert model.k == grid.num_cells

    def test_k_from_cardinality(self, dm):
        cs = conditions(
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, 10)
        )
        assert UtilityModel(cs, dm).k == 9


class TestBenefit:
    def test_satisfied_conditions_give_one(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(ContentCondition(obj, ComparisonOp.GT, 0.0, eps=10.0))
        model = UtilityModel(cs, dm)
        # v ~ N(25, 5): every window's estimated average is > 0.
        assert model.benefit(Window((0, 0), (5, 5))) == 1.0

    def test_unsatisfied_distance_scaled(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(ContentCondition(obj, ComparisonOp.GT, 35.0, eps=20.0))
        model = UtilityModel(cs, dm)
        w = Window((0, 0), (10, 10))
        est = dm.estimate(obj, w)
        expected = max(0.0, 1.0 - abs(est - 35.0) / 20.0)
        assert model.benefit(w) == pytest.approx(expected)

    def test_min_combination(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(
            ContentCondition(obj, ComparisonOp.GT, 0.0, eps=10.0),  # satisfied -> 1
            ContentCondition(obj, ComparisonOp.GT, 1000.0, eps=10.0),  # hopeless -> 0
        )
        assert UtilityModel(cs, dm).benefit(Window((0, 0), (3, 3))) == 0.0

    def test_shape_benefit(self, dm):
        cs = conditions(
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.EQ, 3)
        )
        model = UtilityModel(cs, dm)
        assert model.benefit(Window((0, 0), (3, 1))) == 1.0
        partial = model.benefit(Window((0, 0), (2, 1)))
        assert 0 < partial < 1  # one cell away, scaled by the grid extent

    def test_invalid_eps_rejected(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(ContentCondition(obj, ComparisonOp.GT, 1.0, eps=0.0))
        with pytest.raises(ValueError, match="eps"):
            UtilityModel(cs, dm)

    def test_invalid_s_rejected(self, dm):
        with pytest.raises(ValueError, match="s must be"):
            UtilityModel(conditions(), dm, s=1.5)


class TestUtility:
    def test_utility_formula(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(ContentCondition(obj, ComparisonOp.GT, 0.0, eps=10.0))
        model = UtilityModel(cs, dm, s=0.6)
        w = Window((1, 1), (3, 3))
        expected = 0.6 * model.benefit(w) + 0.4 * (1 - min(model.cost(w) / model.k, 1.0))
        assert model.utility(w) == pytest.approx(expected)

    def test_utility_in_unit_interval(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(ContentCondition(obj, ComparisonOp.GT, 20.0, eps=30.0))
        model = UtilityModel(cs, dm)
        for w in [Window((0, 0), (1, 1)), Window((2, 3), (7, 8)), Window((0, 0), (10, 10))]:
            assert 0.0 <= model.utility(w) <= 1.0

    def test_s_extremes(self, dm):
        obj = ContentObjective.of("avg", col("v"))
        cs = conditions(ContentCondition(obj, ComparisonOp.GT, 0.0, eps=10.0))
        w = Window((0, 0), (2, 2))
        benefit_only = UtilityModel(cs, dm, s=1.0)
        cost_only = UtilityModel(cs, dm, s=0.0)
        assert benefit_only.utility(w) == benefit_only.benefit(w)
        assert cost_only.utility(w) == pytest.approx(
            1 - min(cost_only.cost(w) / cost_only.k, 1.0)
        )


class TestPrefetchState:
    def test_alpha_zero_no_prefetch(self):
        state = PrefetchState(alpha=0.0)
        assert state.size() == 0.0
        state.record_read(False)
        assert state.size() == 0.0

    def test_default_size(self):
        state = PrefetchState(alpha=1.0)
        assert state.size() == pytest.approx(2.0 ** 1 - 1)

    def test_dynamic_growth_formula(self):
        state = PrefetchState(alpha=0.5)
        state.record_read(False)
        state.record_read(False)
        assert state.fp_reads == 2
        assert state.size() == pytest.approx(1.5 ** 2.5 - 1)

    def test_positive_resets(self):
        state = PrefetchState(alpha=1.0)
        for _ in range(4):
            state.record_read(False)
        state.record_read(True)
        assert state.fp_reads == 0
        assert state.size() == pytest.approx(1.0)

    def test_static_ignores_false_positives(self):
        state = PrefetchState(alpha=1.0, strategy=PrefetchStrategy.STATIC)
        base = state.size()
        for _ in range(5):
            state.record_read(False)
        assert state.size() == base

    def test_none_strategy(self):
        state = PrefetchState(alpha=2.0, strategy=PrefetchStrategy.NONE)
        assert state.size() == 0.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            PrefetchState(alpha=-0.5)

    def test_string_strategy_coerced(self):
        assert PrefetchState(alpha=1.0, strategy="static").strategy is PrefetchStrategy.STATIC


class TestPrefetchExtend:
    def test_zero_budget_identity(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        w = Window((3, 3), (5, 5))
        assert prefetch_extend(w, 0.0, grid, model.cost) == w

    def test_extension_contains_original(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        w = Window((4, 4), (5, 5))
        extended = prefetch_extend(w, 2.0, grid, model.cost)
        assert extended.contains_window(w)
        assert extended.cardinality > w.cardinality

    def test_larger_budget_larger_region(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        w = Window((4, 4), (5, 5))
        small = prefetch_extend(w, 1.0, grid, model.cost)
        large = prefetch_extend(w, 6.0, grid, model.cost)
        assert large.cardinality >= small.cardinality

    def test_respects_grid_boundaries(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        w = Window((0, 0), (1, 1))
        extended = prefetch_extend(w, 100.0, grid, model.cost)
        assert extended.lo == (0, 0)
        assert extended.hi[0] <= grid.shape[0]
        assert extended.hi[1] <= grid.shape[1]

    def test_negative_budget_rejected(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        with pytest.raises(ValueError, match="non-negative"):
            prefetch_extend(Window((0, 0), (1, 1)), -1.0, grid, model.cost)

    def test_huge_budget_swallows_grid(self, dm, grid):
        model = UtilityModel(conditions(), dm)
        extended = prefetch_extend(Window((5, 5), (6, 6)), 1e9, grid, model.cost)
        assert extended == Window((0, 0), grid.shape)
