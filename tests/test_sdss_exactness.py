"""Brute-force exactness of the engine on the SDSS-like workload.

The SDSS queries exercise the expression-valued objective
(`avg(sqrt(rowv^2 + colv^2))`) and tight 1-unit intervals — the hardest
estimation regime — so exactness is verified independently here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SearchConfig, SWEngine, enumerate_windows
from repro.storage.placement import cell_flat_ids
from repro.workloads import SDSS_QUERIES, make_database, sdss_dataset, sdss_query


@pytest.fixture(scope="module")
def sky():
    return sdss_dataset(scale=0.15, seed=8)


def brute_force(dataset, spread):
    spec = SDSS_QUERIES[spread]
    grid = dataset.grid
    flat = cell_flat_ids(dataset.coordinates(), grid)
    speed = np.sqrt(dataset.columns["rowv"] ** 2 + dataset.columns["colv"] ** 2)
    counts = np.bincount(flat, minlength=grid.num_cells).reshape(grid.shape)
    sums = np.bincount(flat, weights=speed, minlength=grid.num_cells).reshape(grid.shape)
    out = set()
    cap = spec.card_hi - 1
    for w in enumerate_windows(grid, max_lengths=(cap, cap)):
        card = w.cardinality
        if not spec.card_lo < card < spec.card_hi:
            continue
        box = tuple(slice(l, u) for l, u in zip(w.lo, w.hi))
        c = counts[box].sum()
        if c == 0:
            continue
        avg = sums[box].sum() / c
        if spec.speed_lo < avg < spec.speed_hi:
            out.add(w)
    return out


@pytest.mark.parametrize("spread", ["medium", "low"])
def test_sdss_engine_matches_brute_force(sky, spread):
    db = make_database(sky, "cluster")
    engine = SWEngine(db, sky.name, sample_fraction=0.2)
    run = engine.execute(sdss_query(sky, spread), SearchConfig(alpha=1.0)).run
    assert {r.window for r in run.results} == brute_force(sky, spread)


def test_sdss_axis_placement_matches_brute_force(sky):
    db = make_database(sky, "axis", axis_dim=1)
    engine = SWEngine(db, sky.name, sample_fraction=0.2)
    run = engine.execute(sdss_query(sky, "medium"), SearchConfig(alpha=2.0)).run
    assert {r.window for r in run.results} == brute_force(sky, "medium")
