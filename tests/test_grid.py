"""Unit and property tests for the exploration grid."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Grid, Rect


class TestGridShape:
    def test_shape_and_cell_count(self, grid_10x10):
        assert grid_10x10.shape == (10, 10)
        assert grid_10x10.num_cells == 100
        assert grid_10x10.ndim == 2

    def test_clipped_last_cell(self):
        grid = Grid(Rect.from_bounds([(0.0, 10.5)]), (3.0,))
        assert grid.shape == (4,)
        last = grid.cell_interval(0, 3)
        assert last.lo == 9.0
        assert last.hi == 10.5  # clipped to the area bound

    def test_step_count_mismatch(self):
        with pytest.raises(ValueError, match="steps"):
            Grid(Rect.from_bounds([(0, 1), (0, 1)]), (1.0,))

    def test_nonpositive_step(self):
        with pytest.raises(ValueError, match="positive"):
            Grid(Rect.from_bounds([(0, 1)]), (0.0,))

    def test_empty_area(self):
        with pytest.raises(ValueError, match="positive extent"):
            Grid(Rect.from_bounds([(1.0, 1.0)]), (1.0,))

    def test_exact_division_has_no_phantom_cell(self):
        grid = Grid(Rect.from_bounds([(0.0, 10.0)]), (2.0,))
        assert grid.shape == (5,)


class TestCellAddressing:
    def test_cell_rect(self, grid_10x10):
        rect = grid_10x10.cell_rect((2, 3))
        assert rect.lower == (2.0, 3.0)
        assert rect.upper == (3.0, 4.0)

    def test_cell_of_point(self, grid_10x10):
        assert grid_10x10.cell_of_point((2.5, 3.99)) == (2, 3)
        assert grid_10x10.cell_of_point((0.0, 0.0)) == (0, 0)

    def test_cell_of_point_outside(self, grid_10x10):
        with pytest.raises(ValueError, match="outside"):
            grid_10x10.cell_of_point((10.0, 5.0))

    def test_point_in_clipped_cell(self):
        grid = Grid(Rect.from_bounds([(0.0, 10.5)]), (3.0,))
        assert grid.cell_of_point((10.4,)) == (3,)

    def test_flat_id_roundtrip(self, grid_10x10):
        for idx in [(0, 0), (9, 9), (3, 7)]:
            flat = grid_10x10.flat_id(idx)
            assert grid_10x10.index_of_flat(flat) == idx

    def test_flat_id_row_major(self, grid_10x10):
        assert grid_10x10.flat_id((0, 0)) == 0
        assert grid_10x10.flat_id((0, 1)) == 1
        assert grid_10x10.flat_id((1, 0)) == 10

    def test_flat_id_bounds(self, grid_10x10):
        with pytest.raises(ValueError, match="out of range"):
            grid_10x10.flat_id((10, 0))
        with pytest.raises(ValueError, match="out of range"):
            grid_10x10.index_of_flat(100)

    def test_iter_cells_covers_everything(self):
        grid = Grid(Rect.from_bounds([(0, 3), (0, 2)]), (1.0, 1.0))
        cells = list(grid.iter_cells())
        assert len(cells) == 6
        assert len(set(cells)) == 6

    @given(st.integers(0, 9), st.integers(0, 9))
    def test_flat_roundtrip_property(self, i, j):
        grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
        assert grid.index_of_flat(grid.flat_id((i, j))) == (i, j)

    @given(
        st.floats(min_value=0, max_value=9.999, allow_nan=False),
        st.floats(min_value=0, max_value=9.999, allow_nan=False),
    )
    def test_point_lands_in_its_cell(self, x, y):
        grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
        idx = grid.cell_of_point((x, y))
        assert grid.cell_rect(idx).contains_point((x, y))


class TestBoxRect:
    def test_box_rect(self, grid_10x10):
        rect = grid_10x10.box_rect((2, 3), (4, 5))
        assert rect.lower == (2.0, 3.0)
        assert rect.upper == (4.0, 5.0)

    def test_box_rect_validates(self, grid_10x10):
        with pytest.raises(ValueError, match="invalid"):
            grid_10x10.box_rect((2, 3), (2, 5))  # empty in dim 0
        with pytest.raises(ValueError, match="invalid"):
            grid_10x10.box_rect((0, 0), (11, 1))

    def test_box_rect_clipped_edge(self):
        grid = Grid(Rect.from_bounds([(0.0, 10.5)]), (3.0,))
        rect = grid.box_rect((2,), (4,))
        assert rect.upper == (10.5,)
