"""Unit and property tests for the Guttman R-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import RTree


def brute_force(points, lows, highs):
    return sorted(
        i
        for i, p in enumerate(points)
        if all(lo <= v < hi for v, lo, hi in zip(p, lows, highs))
    )


class TestRTreeBasics:
    def test_empty_tree(self):
        tree = RTree(2)
        assert tree.size == 0
        assert tree.search((0, 0), (10, 10)) == []

    def test_insert_and_search(self):
        tree = RTree(2, max_entries=4)
        tree.insert((1.0, 1.0), 0)
        tree.insert((5.0, 5.0), 1)
        assert sorted(tree.search((0, 0), (2, 2))) == [0]
        assert sorted(tree.search((0, 0), (10, 10))) == [0, 1]

    def test_half_open_semantics(self):
        tree = RTree(1, max_entries=4)
        tree.insert((5.0,), 0)
        assert tree.search((5.0,), (6.0,)) == [0]
        assert tree.search((4.0,), (5.0,)) == []

    def test_dimension_validation(self):
        tree = RTree(2)
        with pytest.raises(ValueError, match="dims"):
            tree.insert((1.0,), 0)
        with pytest.raises(ValueError, match="mismatch"):
            tree.search((0,), (1,))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="ndim"):
            RTree(0)
        with pytest.raises(ValueError, match="max_entries"):
            RTree(2, max_entries=2)

    def test_split_grows_height(self):
        tree = RTree(2, max_entries=4)
        for i in range(30):
            tree.insert((float(i % 6), float(i // 6)), i)
        assert tree.height >= 2
        assert tree.size == 30

    def test_duplicates_allowed(self):
        tree = RTree(2, max_entries=4)
        tree.insert((1.0, 1.0), 0)
        tree.insert((1.0, 1.0), 1)
        assert sorted(tree.search((0, 0), (2, 2))) == [0, 1]


class TestRTreeAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)
            ),
            min_size=1,
            max_size=120,
        ),
        st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)),
        st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)),
    )
    def test_search_matches_brute_force(self, points, corner_a, corner_b):
        lows = tuple(min(a, b) for a, b in zip(corner_a, corner_b))
        highs = tuple(max(a, b) for a, b in zip(corner_a, corner_b))
        tree = RTree(2, max_entries=5)
        for i, p in enumerate(points):
            tree.insert(p, i)
        assert sorted(tree.search(lows, highs)) == brute_force(points, lows, highs)

    def test_bulk_insert(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 10, (200, 2))
        tree = RTree(2, max_entries=8)
        tree.bulk_insert(pts)
        assert tree.size == 200
        assert sorted(tree.search((0, 0), (10.001, 10.001))) == list(range(200))


class TestLeafOrder:
    def test_leaf_order_is_permutation(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 10, (150, 2))
        tree = RTree(2, max_entries=8)
        tree.bulk_insert(pts)
        order = tree.leaf_order()
        assert sorted(order) == list(range(150))

    def test_leaf_order_has_locality(self):
        """R-tree leaf neighbors should be spatially closer than random."""
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, (400, 2))
        tree = RTree(2, max_entries=16)
        for i in rng.permutation(400):
            tree.insert(tuple(pts[i]), int(i))
        ordered = pts[np.array(tree.leaf_order())]
        tree_gap = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
        random_gap = np.linalg.norm(np.diff(pts, axis=0), axis=1).mean()
        assert tree_gap < random_gap

    def test_leaf_mbrs_cover_points(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 10, (100, 2))
        tree = RTree(2, max_entries=8)
        tree.bulk_insert(pts)
        mbrs = tree.leaf_mbrs()
        for p in pts:
            assert any(
                all(lo <= v <= hi for v, lo, hi in zip(p, mins, maxs))
                for mins, maxs in mbrs
            )
