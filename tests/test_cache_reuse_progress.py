"""Tests for cross-query cache reuse and search progress reporting."""

from __future__ import annotations

import pytest

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    SWEngine,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.workloads import make_database


def variant_query(base: SWQuery, threshold: float) -> SWQuery:
    """Same grid/objective, different content threshold."""
    grid = base.grid
    card = ShapeObjective(ShapeKind.CARDINALITY)
    avg = ContentObjective.of("avg", col("value"))
    return SWQuery.build(
        dimensions=base.dimensions,
        area=[(iv.lo, iv.hi) for iv in grid.area.intervals],
        steps=grid.steps,
        conditions=[
            ShapeCondition(card, ComparisonOp.GT, 5),
            ShapeCondition(card, ComparisonOp.LT, 10),
            ContentCondition(avg, ComparisonOp.GT, threshold),
            ContentCondition(avg, ComparisonOp.LT, 30.0),
        ],
    )


class TestCacheReuse:
    def test_second_query_reads_nothing(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        first = engine.execute(tiny_query, reuse_cache=True)
        assert first.run.stats.reads > 0
        refined = variant_query(tiny_query, threshold=24.0)
        second = engine.execute(refined, reuse_cache=True)
        assert second.run.stats.reads == 0
        assert second.disk_stats["blocks_read"] == 0

    def test_reused_results_still_exact(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        engine.execute(tiny_query, reuse_cache=True)
        refined = variant_query(tiny_query, threshold=24.0)
        warm = engine.execute(refined, reuse_cache=True)
        # Cold reference.
        db2 = make_database(tiny_dataset, "cluster")
        cold = SWEngine(db2, tiny_dataset.name, sample_fraction=0.3).execute(refined)
        assert {r.window for r in warm.results} == {r.window for r in cold.results}
        # And the refinement is a subset of the broader query.
        broad = {r.window for r in engine.execute(tiny_query, reuse_cache=True).results}
        assert {r.window for r in warm.results} <= broad

    def test_no_reuse_without_flag(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        engine.execute(tiny_query)
        second = engine.execute(tiny_query)
        # Without reuse a fresh Data Manager re-requests (buffer pool may
        # still absorb some disk I/O, but reads are issued).
        assert second.run.stats.reads >= 0
        assert second.run.stats.generated > 0

    def test_different_grid_not_reused(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        engine.execute(tiny_query, reuse_cache=True)
        grid = tiny_query.grid
        finer = SWQuery.build(
            dimensions=tiny_query.dimensions,
            area=[(iv.lo, iv.hi) for iv in grid.area.intervals],
            steps=[s / 2 for s in grid.steps],
            conditions=tiny_query.conditions.conditions,
        )
        report = engine.execute(finer, reuse_cache=True)
        assert report.run.stats.reads > 0


class TestProgress:
    def test_progress_before_and_after(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        search = engine.prepare(tiny_query)
        before = search.progress()
        assert before["explored"] == 0
        assert before["data_read_fraction"] == 0.0
        search.run()
        after = search.progress()
        assert after["explored"] > 0
        assert after["results"] > 0
        assert after["data_read_fraction"] == pytest.approx(1.0)
        assert after["frontier"] == 0

    def test_progress_mid_stream(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        search = engine.prepare(tiny_query, SearchConfig(alpha=0.0))
        stream = search.iter_results()
        next(stream)
        mid = search.progress()
        assert 0 < mid["data_read_fraction"] < 1.0
        assert mid["results"] >= 1
        stream.close()
