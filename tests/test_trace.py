"""Tests for search tracing."""

from __future__ import annotations

import pytest

from repro.core import SearchConfig, SWEngine
from repro.core.trace import EventKind, SearchTrace
from repro.workloads import make_database


@pytest.fixture()
def traced_run(tiny_dataset, tiny_query):
    db = make_database(tiny_dataset, "cluster")
    engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
    trace = SearchTrace()
    report = engine.execute(tiny_query, SearchConfig(alpha=1.0), trace=trace)
    return trace, report


class TestTraceRecording:
    def test_results_traced(self, traced_run):
        trace, report = traced_run
        result_events = trace.events(EventKind.RESULT)
        assert len(result_events) == report.run.num_results
        assert [e.time for e in result_events] == [r.time for r in report.results]

    def test_reads_traced_with_positivity(self, traced_run):
        trace, report = traced_run
        reads = trace.events(EventKind.READ)
        assert len(reads) == report.run.stats.reads
        positive, false_positive = trace.read_positivity()
        assert positive + false_positive == len(reads)
        assert positive > 0

    def test_prefetched_cells_consistent(self, traced_run):
        trace, report = traced_run
        # The stats counter includes non-disk reads; the trace only disk
        # reads, so it is a lower bound.
        assert trace.prefetched_cells() <= report.run.stats.prefetched_cells

    def test_times_monotone_per_kind(self, traced_run):
        trace, _ = traced_run
        for kind in (EventKind.READ, EventKind.RESULT):
            times = [e.time for e in trace.events(kind)]
            assert times == sorted(times)

    def test_summary_fields(self, traced_run):
        trace, report = traced_run
        summary = trace.summary()
        assert summary["results"] == report.run.num_results
        assert summary["reads"] == report.run.stats.reads
        assert summary["max_result_delay_s"] >= 0

    def test_result_delays(self, traced_run):
        trace, report = traced_run
        delays = trace.result_delays()
        assert len(delays) == max(0, report.run.num_results - 1)
        assert all(d >= 0 for d in delays)

    def test_no_trace_no_overhead_interface(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        report = engine.execute(tiny_query)  # no trace argument
        assert report.run.num_results > 0

    def test_refresh_traced(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        trace = SearchTrace()
        report = engine.execute(
            tiny_query, SearchConfig(alpha=0.0, refresh_reads=10), trace=trace
        )
        assert len(trace.events(EventKind.REFRESH)) == report.run.stats.refreshes
        assert report.run.stats.refreshes > 0

    def test_jump_traced(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3)
        trace = SearchTrace()
        report = engine.execute(
            tiny_query,
            SearchConfig(alpha=0.0, s=0.5, diversification="dist_jumps"),
            trace=trace,
        )
        assert len(trace.events(EventKind.JUMP)) == report.run.stats.jumps
