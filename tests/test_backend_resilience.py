"""Backend resilience: seeded faults, retry/breaker/fallback, journal.

The contract under test (ISSUE 9 / DESIGN.md §16): under **any** injected
backend fault plan, a run either completes with a result set
byte-identical to the fault-free golden run, or reports ``degraded`` /
``aborted`` with a machine-checkable reason — no exception escapes the
engine — and replaying the same ``(seed, plan)`` is byte-deterministic.
Kill-point tests interrupt the SQLite install journal at every
transaction boundary and verify the store recovers on reopen with
installed-cell accounting identical to the simulator oracle.

Seeds extend under ``BACKEND_CHAOS_SEED`` (the dedicated CI matrix),
mirroring the storage-chaos suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import SearchConfig, SWEngine
from repro.core.trace import EventKind, SearchTrace
from repro.errors import ConfigError, TornWriteError
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.storage import (
    BACKEND_FAULT_KINDS,
    BackendFaultInjector,
    BackendFaultPlan,
    CircuitBreaker,
    HeapTable,
    ResilienceConfig,
    ResilientBackend,
    SimulatorBackend,
    SQLiteBackend,
    TableSchema,
)
from repro.storage.sqlite_backend import _IN_CHUNK
from repro.workloads import make_database, synthetic_dataset, synthetic_query

pytestmark = pytest.mark.backend_chaos

CHAOS_SEEDS = [1, 2, 3]
if os.environ.get("BACKEND_CHAOS_SEED"):
    CHAOS_SEEDS.append(173 * int(os.environ["BACKEND_CHAOS_SEED"]) + 11)

_DATASET = synthetic_dataset("high", scale=0.2, seed=5)
_QUERY = synthetic_query(_DATASET)


# -- helpers ------------------------------------------------------------------


def _result_set(report) -> list:
    """Result-set fingerprint: bounds + objective values, times excluded.

    Retry backoff charges simulated time, so faulted runs may emit the
    same windows at later instants — the *set* is the clock-independent
    equivalence the contract pins.
    """
    return sorted(
        (repr(r.bounds), tuple(sorted(r.objective_values.items())))
        for r in report.results
    )


def _timed_set(report) -> list:
    """Full fingerprint including emission times (zero-fault / replay)."""
    return sorted((repr(r.bounds), r.time) for r in report.results)


def _run(plan=None, config=None, backend="sqlite:", trace=None):
    database = make_database(_DATASET, "cluster", backend=backend)
    registry = MetricsRegistry()
    database.attach_metrics(registry)
    if plan is not None:
        database.attach_resilience(plan)
    engine = SWEngine(database, _DATASET.name, sample_fraction=0.1)
    report = engine.execute(
        _QUERY, config or SearchConfig(alpha=1.0), trace=trace
    )
    return report, registry, database


# -- the fault plan is pure in (seed, op_index) -------------------------------


def test_plan_purity_and_replay():
    plan = BackendFaultPlan.chaos(11, 0.5)
    draws = [plan.fault_at(i) for i in range(500)]
    assert draws == [plan.fault_at(i) for i in range(500)]
    assert any(draws), "a 0.5-rate plan must inject something in 500 draws"
    for kind in draws:
        assert kind is None or kind in BACKEND_FAULT_KINDS
    # Index i's decision is independent of whether earlier indexes were
    # consulted — the property that makes retries replayable.
    assert plan.fault_at(250) == draws[250]


def test_plan_torn_install_degrades_on_reads():
    plan = BackendFaultPlan(seed=3, torn_install_prob=1.0)
    assert plan.fault_at(0, install=True) == "torn_install"
    assert plan.fault_at(0, install=False) == "transient"


def test_plan_scheduled_overrides_and_validation():
    plan = BackendFaultPlan(seed=0, scheduled=((4, "busy"), (7, "disconnect")))
    assert plan.active
    assert plan.fault_at(4) == "busy"
    assert plan.fault_at(7) == "disconnect"
    assert plan.fault_at(5) is None
    with pytest.raises(ConfigError, match="must be in"):
        BackendFaultPlan(transient_prob=1.5)
    with pytest.raises(ConfigError, match="sum"):
        BackendFaultPlan(transient_prob=0.6, busy_prob=0.6)
    with pytest.raises(ConfigError, match="unknown backend fault kind"):
        BackendFaultPlan(scheduled=((0, "meteor"),))
    with pytest.raises(ConfigError, match="op_index"):
        BackendFaultPlan(scheduled=((-1, "busy"),))
    with pytest.raises(ConfigError, match="slow_extra_ms"):
        BackendFaultPlan(slow_extra_ms=-1.0)


def test_injector_counts_and_state_roundtrip():
    plan = BackendFaultPlan(seed=0, scheduled=((0, "busy"), (2, "slow")))
    injector = BackendFaultInjector(plan)
    assert injector.next_fault() == "busy"
    assert injector.next_fault() is None
    assert injector.next_fault() == "slow"
    assert injector.injected["busy"] == 1
    assert injector.injected["slow"] == 1
    assert injector.total_injected == 2
    state = injector.state()
    other = BackendFaultInjector(plan)
    other.restore_state(state)
    assert other.op_index == 3 and other.injected == injector.injected


# -- circuit breaker unit behaviour -------------------------------------------


def test_breaker_trips_after_threshold_and_reopens_from_half_open():
    breaker = CircuitBreaker(threshold=3, probes=1, open_s=0.05)
    assert breaker.state == "closed"
    assert not breaker.record_failure(0.0)
    assert not breaker.record_failure(0.0)
    assert breaker.record_failure(0.0)  # third consecutive failure trips
    assert breaker.state == "open" and breaker.trips == 1
    assert not breaker.allow(0.01)  # still inside the open window
    assert breaker.allow(0.06)  # window elapsed: half-open probe
    assert breaker.state == "half_open"
    assert breaker.record_failure(0.06)  # failed probe re-trips immediately
    assert breaker.state == "open" and breaker.trips == 2


def test_breaker_closes_after_successful_probes():
    breaker = CircuitBreaker(threshold=1, probes=2, open_s=0.05)
    assert breaker.record_failure(0.0)
    assert breaker.allow(0.1)
    assert not breaker.record_success()  # 1 of 2 probes
    assert breaker.state == "half_open"
    assert breaker.record_success()  # 2 of 2: closes
    assert breaker.state == "closed"
    # A success in closed state resets the consecutive-failure streak.
    breaker2 = CircuitBreaker(threshold=2, probes=1, open_s=0.05)
    assert not breaker2.record_failure(0.0)
    breaker2.record_success()
    assert not breaker2.record_failure(0.0)
    assert breaker2.state == "closed"


def test_resilience_config_validation():
    with pytest.raises(ConfigError):
        ResilienceConfig(max_attempts=0)
    with pytest.raises(ConfigError):
        ResilienceConfig(breaker_threshold=0)
    with pytest.raises(ConfigError):
        ResilienceConfig(breaker_probes=0)
    with pytest.raises(ConfigError, match="cannot wrap"):
        inner = ResilientBackend(SimulatorBackend(), BackendFaultPlan())
        ResilientBackend(inner, BackendFaultPlan())


# -- the equivalence invariant ------------------------------------------------


def test_zero_fault_plan_is_byte_identical_including_times():
    golden, golden_reg, _ = _run()
    wrapped, wrapped_reg, db = _run(plan=BackendFaultPlan(seed=0))
    assert wrapped.outcome == "complete"
    assert wrapped.backend_degradation is None
    assert _timed_set(wrapped) == _timed_set(golden)
    assert wrapped.run.completion_time_s == golden.run.completion_time_s
    stats = db.backend.stats()
    assert stats["injected_faults"] == 0 and stats["retries"] == 0
    audit = InvariantAuditor(wrapped_reg).report()
    assert audit["ok"], audit["violations"]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_equivalence_invariant(seed):
    """Any fault plan: identical result set, or degraded/aborted with reason."""
    golden, _, _ = _run()
    plan = BackendFaultPlan.chaos(seed, 0.3)
    report, registry, db = _run(plan=plan)

    assert report.outcome in ("complete", "degraded", "aborted")
    if report.outcome == "complete":
        assert _result_set(report) == _result_set(golden)
    elif report.outcome == "degraded":
        assert report.backend_degradation is not None
        assert report.backend_degradation.reason
        # The mirror fallback is byte-identical, so even degraded runs
        # return the golden result set — degradation records that the
        # *real* store did not serve it.
        assert _result_set(report) == _result_set(golden)
    else:
        assert report.run.interrupt_reason is not None

    # Replay of the same (seed, plan) is byte-deterministic, times included.
    replay, _, _ = _run(plan=BackendFaultPlan.chaos(seed, 0.3))
    assert _timed_set(replay) == _timed_set(report)
    assert replay.outcome == report.outcome
    assert replay.backend_retries == report.backend_retries

    # The resilience counters satisfy every auditor identity.
    audit = InvariantAuditor(registry).report()
    assert audit["ok"], audit["violations"]
    stats = db.backend.stats()
    assert stats["attempts"] == stats["successes"] + stats["injected_faults"]
    assert stats["fallback_ops"] == stats["short_circuits"] + stats["failures"]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_install_counts_match_oracle(seed):
    """Dedup accounting is fault-independent (mirror-authoritative)."""
    _, _, clean_db = _run()
    _, _, chaos_db = _run(plan=BackendFaultPlan.chaos(seed, 0.3))
    assert chaos_db.backend.installed_cell_count(
        _DATASET.name
    ) == clean_db.backend.installed_cell_count(_DATASET.name)


def test_forced_outage_degrades_and_serves_from_mirror():
    golden, _, _ = _run()
    trace = SearchTrace()
    plan = BackendFaultPlan(seed=9, transient_prob=1.0)
    report, registry, db = _run(plan=plan, trace=trace)
    assert report.outcome == "degraded"
    assert report.backend_degradation is not None
    assert report.fallback_reads > 0
    assert report.breaker_trips > 0
    assert "mirror" in report.backend_degradation.describe()
    # Bit-identical fallback: the degraded run still returns the answer.
    assert _result_set(report) == _result_set(golden)
    stats = db.backend.stats()
    assert stats["short_circuits"] > 0, "open breaker must short-circuit"
    assert stats["fallback_reads"] <= stats["fallback_ops"]
    # The trace carries the new event kinds.
    summary = trace.summary()
    assert summary["backend_retries"] > 0
    assert summary["breaker_events"] > 0
    assert summary["fallbacks"] > 0
    transitions = {e.detail["transition"] for e in trace.events(EventKind.BREAKER)}
    assert "open" in transitions
    audit = InvariantAuditor(registry).report()
    assert audit["ok"], audit["violations"]


def test_slow_faults_charge_time_but_keep_results():
    golden, _, _ = _run()
    report, _, db = _run(plan=BackendFaultPlan(seed=4, slow_prob=1.0))
    assert report.outcome == "complete"
    assert _result_set(report) == _result_set(golden)
    stats = db.backend.stats()
    assert stats["slow_faults"] == stats["ops"]
    assert stats["injected_faults"] == 0
    assert report.run.completion_time_s > golden.run.completion_time_s


def test_deadline_abort_is_not_stuck_in_backoff():
    golden, _, _ = _run()
    deadline = golden.run.completion_time_s / 4.0
    plan = BackendFaultPlan(seed=2, transient_prob=0.9)
    report, _, _ = _run(
        plan=plan, config=SearchConfig(alpha=1.0, deadline_s=deadline)
    )
    assert report.outcome == "aborted"
    assert report.run.interrupt_reason == "deadline"


def test_simulator_primary_under_chaos_too():
    """The wrapper is backend-agnostic: simulator-on-simulator works."""
    golden, _, _ = _run(backend="simulator")
    report, _, _ = _run(backend="simulator", plan=BackendFaultPlan.chaos(1, 0.3))
    assert report.outcome in ("complete", "degraded")
    assert _result_set(report) == _result_set(golden)


def test_attach_resilience_detach_restores_direct_handles():
    database = make_database(_DATASET, "cluster", backend="sqlite:")
    inner = database.backend
    database.attach_resilience(BackendFaultPlan(seed=0))
    assert getattr(database.backend, "resilient", False)
    assert database.table(_DATASET.name) is not None
    database.attach_resilience(None)
    assert database.backend is inner
    assert not getattr(database.backend, "resilient", False)


# -- the install journal under kill points ------------------------------------


def _heap(rows: int = 120) -> HeapTable:
    rng = np.random.default_rng(7)
    return HeapTable(
        "jt",
        TableSchema(["x", "y"], ["x", "y"]),
        {"x": rng.uniform(0, 10, rows), "y": rng.uniform(0, 10, rows)},
        tuples_per_block=16,
    )


def _journal_payload():
    """An install spanning several apply chunks (ids and stats)."""
    ids = list(range(int(2.4 * _IN_CHUNK)))
    stats = [(i, "avg:v", 1, float(i), 0.0, float(i)) for i in ids[: _IN_CHUNK + 40]]
    return ids, stats


def test_install_journal_recovers_at_every_kill_point(tmp_path):
    """Tear at each protocol point; reopening always recovers the install."""
    path = str(tmp_path / "tear.db")
    ids, stats = _journal_payload()
    oracle = SimulatorBackend()
    oracle.bind_table(_heap())
    expected = oracle.install_cells("jt", "g", ids)

    point = 1
    torn_points = []
    while True:
        backend = SQLiteBackend(path)
        if point == 1:
            backend.bind_table(_heap())
        backend.arm_install_tear(point)
        try:
            counts = backend.install_cells("jt", "g", ids, stats)
        except TornWriteError as err:
            torn_points.append(err.point)
            backend.close()
            # Reopen = crash recovery: the pending intent rolls forward.
            reopened = SQLiteBackend(path)
            assert reopened.recovered_installs == 1
            assert reopened.installed_cell_count("jt", "g") == len(ids)
            assert len(reopened.fetch_cell_summaries("jt", "g")) == len(
                {fid for fid, *_ in stats}
            )
            # Reset the record so the next kill point starts clean.
            reopened.restore_install_state("jt", {"installs": {}, "stats": []})
            reopened.close()
            point += 1
            continue
        backend._install_kill = None  # disarm the unspent trigger
        assert counts == expected
        backend.close()
        break

    # intent + 3 id chunks + 2 stats chunks + commit = 7 distinct points.
    assert len(torn_points) == 7
    assert torn_points[0] == "intent" and torn_points[-1] == "commit"
    assert len(set(torn_points)) == len(torn_points)


def test_torn_install_retry_resumes_pending_journal(tmp_path):
    """A same-process retry rolls the pending intent forward, same counts."""
    path = str(tmp_path / "resume.db")
    ids, stats = _journal_payload()
    backend = SQLiteBackend(path)
    backend.bind_table(_heap())
    backend.arm_install_tear(2)
    with pytest.raises(TornWriteError):
        backend.install_cells("jt", "g", ids, stats)
    counts = backend.install_cells("jt", "g", ids, stats)
    oracle = SimulatorBackend()
    oracle.bind_table(_heap())
    assert counts == oracle.install_cells("jt", "g", ids)
    assert backend.installed_cell_count("jt", "g") == len(ids)
    # The journal is empty again; a reopen recovers nothing.
    backend.close()
    assert SQLiteBackend(path).recovered_installs == 0


def test_torn_installs_under_engine_keep_parity(tmp_path):
    """torn_install-only chaos: engine completes, store matches the oracle."""
    golden, _, clean_db = _run()
    plan = BackendFaultPlan(seed=6, torn_install_prob=0.8)
    report, registry, db = _run(plan=plan)
    assert report.outcome in ("complete", "degraded")
    assert _result_set(report) == _result_set(golden)
    assert db.backend.installed_cell_count(
        _DATASET.name
    ) == clean_db.backend.installed_cell_count(_DATASET.name)
    # Interrupted installs are resumed by the retry path, so the real
    # store never *exceeds* the mirror and only lags it when an install
    # exhausted every attempt (a recorded failure, not silent loss).
    inner = db.backend.inner
    mirror = db.backend.mirror
    stats = db.backend.stats()
    inner_count = inner.installed_cell_count(_DATASET.name)
    mirror_count = mirror.installed_cell_count(_DATASET.name)
    assert inner_count <= mirror_count
    if stats["failures"] == 0:
        assert inner_count == mirror_count
    audit = InvariantAuditor(registry).report()
    assert audit["ok"], audit["violations"]
