"""Record/replay determinism: wall-clock runs replay in simulated time.

The contract (DESIGN.md §17): a journal recorded against a wall-clock
server — every applied mutation, in order — can be replayed through a
fresh :class:`ServeCore` in simulated time and reproduce the *exact*
observables: result-window keys, ``serve.*`` counters, the trace event
sequence, byte-for-byte.  The committed fixture
``tests/data/serve_reference.journal`` pins this across releases: if a
code change alters any observable, the fixture replay breaks loudly.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from pathlib import Path

import pytest

from repro.errors import ProtocolError
from repro.serve import (
    JOURNAL_VERSION,
    AsyncServeClient,
    ExplorationServer,
    RunRecorder,
    ServeConfig,
    ServeCore,
    TenantQuota,
    fingerprint_bytes,
    load_journal,
    replay_journal,
)

pytestmark = pytest.mark.serve

FIXTURE = Path(__file__).resolve().parent / "data" / "serve_reference.journal"


def _scripted_recording() -> RunRecorder:
    """Drive a small mixed run through ServeCore while recording it."""
    config = ServeConfig(
        max_live=2,
        queue_limit=4,
        slice_steps=8,
        policy="wfq",
        seed=1,
        quotas={"bob": TenantQuota(max_sessions=1)},
    )
    recorder = RunRecorder()
    recorder.begin(config)
    core = ServeCore(config, on_event=recorder.record)
    core.submit({"session": "a1", "workload": "synth-low", "scale": 0.12,
                 "step_budget": 24, "tenant": "alice"})
    core.submit({"session": "b1", "workload": "synth-low", "scale": 0.12,
                 "step_budget": 24, "tenant": "bob"})
    core.submit({"session": "b2", "workload": "synth-low", "scale": 0.12,
                 "tenant": "bob"})  # throttled: bob's session quota
    for _ in range(3):
        core.tick()
    core.cancel("a1")
    while core.pending():
        core.tick()
    recorder.finish(core.fingerprint_payload())
    return recorder


class TestCommittedFixture:
    def test_fixture_replays_byte_identically(self):
        report = replay_journal(FIXTURE)
        assert report.matches, report.mismatches
        assert report.events == 16
        assert report.recorded_fingerprint is not None
        # The strongest form of the claim: raw bytes, not parsed trees.
        assert report.fingerprint == report.recorded_fingerprint
        digest = hashlib.sha256(report.fingerprint).hexdigest()
        records = load_journal(FIXTURE)
        assert records[-1]["sha256"] == digest

    def test_fixture_exercises_every_mutation_kind(self):
        kinds = [r["kind"] for r in load_journal(FIXTURE) if "kind" in r]
        assert {"submit", "tick", "cancel"} <= set(kinds)
        outcomes = [r["outcome"] for r in load_journal(FIXTURE)
                    if r.get("kind") == "submit"]
        # Admitted, queued and throttled submissions are all pinned.
        assert "live" in outcomes and "throttled" in outcomes

    def test_fixture_replay_reproduces_observables(self):
        report = replay_journal(FIXTURE)
        payload = json.loads(report.fingerprint.decode())
        sessions = payload["sessions"]
        assert sessions["bob-2"]["state"] == "throttled"
        assert sessions["bob-2"]["reason"] == "tenant_sessions"
        assert sessions["carol-1"]["interrupted"] is True  # cancelled
        assert all(isinstance(s["result_keys"], list)
                   for s in sessions.values() if "result_keys" in s)
        assert sessions["alice-1"]["result_keys"]  # non-empty window keys
        assert payload["counters"]["serve.sessions_submitted"] == 4
        # Trace sequence is part of the fingerprint, so replay equality
        # already proved it; spot-check it is present and non-trivial.
        assert len(payload["trace"]) > 0


class TestRoundTrip:
    def test_fresh_record_then_replay_matches(self):
        recorder = _scripted_recording()
        report = replay_journal(recorder.lines())
        assert report.matches, report.mismatches
        assert report.fingerprint == report.recorded_fingerprint
        # Replayed core reproduces the recorded counters exactly.
        payload = json.loads(report.fingerprint.decode())
        assert payload["counters"]["serve.sessions_throttled"] == 1

    def test_replay_accepts_path_text_and_records(self, tmp_path):
        recorder = _scripted_recording()
        path = tmp_path / "run.journal"
        recorder.save(path)
        by_path = replay_journal(path)
        by_text = replay_journal(path.read_text())
        by_records = replay_journal(load_journal(path))
        assert by_path.matches and by_text.matches and by_records.matches
        assert by_path.fingerprint == by_text.fingerprint == by_records.fingerprint

    def test_tampered_tick_is_detected(self):
        records = load_journal(_scripted_recording().lines())
        ticks = [i for i, r in enumerate(records) if r.get("kind") == "tick"]
        records[ticks[0]]["session"] = "intruder"
        report = replay_journal(records)
        assert not report.matches
        assert any("tick" in m for m in report.mismatches)

    def test_tampered_fingerprint_is_detected(self):
        records = load_journal(_scripted_recording().lines())
        assert records[-1]["events"] == len(records) - 2
        records[-1]["payload"]["counters"]["serve.sessions_completed"] = 999
        report = replay_journal(records)
        assert not report.matches
        assert any("fingerprint" in m for m in report.mismatches)


class TestJournalFormat:
    def test_load_rejects_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            load_journal('{"seq": 0, "kind": "tick"}\n')

    def test_load_rejects_wrong_version(self):
        header = {"record": "header",
                  "journal_version": JOURNAL_VERSION + 1, "config": {}}
        with pytest.raises(ValueError, match="version"):
            load_journal(json.dumps(header) + "\n")

    def test_recorder_guards(self):
        recorder = RunRecorder()
        with pytest.raises(RuntimeError, match="begin"):
            recorder.record("tick", {"session": "s", "outcome": "ran"})
        recorder.begin(ServeConfig())
        with pytest.raises(RuntimeError, match="header"):
            recorder.begin(ServeConfig())
        recorder.finish({"sessions": {}})
        with pytest.raises(RuntimeError, match="finished"):
            recorder.record("tick", {"session": "s", "outcome": "ran"})

    def test_finish_is_idempotent(self):
        recorder = RunRecorder()
        recorder.begin(ServeConfig())
        recorder.finish({"sessions": {}})
        before = recorder.lines()
        recorder.finish({"sessions": {}})
        assert recorder.lines() == before

    def test_events_are_sequenced_and_wall_stamped(self):
        recorder = _scripted_recording()
        records = load_journal(recorder.lines())
        events = [r for r in records if "kind" in r]
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert all(e["t_wall"] >= 0.0 for e in events)

    def test_fingerprint_bytes_is_canonical(self):
        payload = {"b": 1.0, "a": [1, 2]}
        blob = fingerprint_bytes(payload)
        assert blob == b'{"a":[1,2],"b":1.0}'
        assert fingerprint_bytes(json.loads(blob.decode())) == blob


class TestWallClockServerRecording:
    def test_socket_run_replays_in_simulated_time(self):
        """The tentpole gate end to end: record a *wall-clock* socket run
        (real asyncio server, real client connections, scheduler pumping
        on physical time), then replay the journal through a simulated
        core and match the fingerprint byte-for-byte."""

        async def record() -> RunRecorder:
            config = ServeConfig(max_live=2, queue_limit=4, slice_steps=8,
                                 policy="wfq")
            recorder = RunRecorder()
            server = ExplorationServer(config, recorder=recorder)
            host, port = await server.start()
            async with await AsyncServeClient.open(host, port) as client:
                await client.submit("w1", "synth-low", scale=0.1, step_budget=16)
                await client.submit("w2", "synth-low", scale=0.1, step_budget=16,
                                    seed=9)
                await client.wait("w1", poll_s=0.01, timeout_s=60.0)
                await client.wait("w2", poll_s=0.01, timeout_s=60.0)
                await client.shutdown()
            await server.wait_stopped()
            return recorder

        recorder = asyncio.run(record())
        report = replay_journal(recorder.lines())
        assert report.matches, report.mismatches
        assert report.fingerprint == report.recorded_fingerprint
        payload = json.loads(report.fingerprint.decode())
        assert payload["sessions"]["w1"]["state"] == "done"
        assert payload["sessions"]["w1"]["result_keys"]  # non-empty

    def test_protocol_rejections_never_journal(self):
        recorder = RunRecorder()
        recorder.begin(ServeConfig())
        core = ServeCore(ServeConfig(), on_event=recorder.record)
        with pytest.raises(ProtocolError):
            core.submit({"session": "x", "workload": "not-a-workload"})
        assert [r for r in load_journal(recorder.lines() + [])
                if "kind" in r] == []
