"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, list[str]]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, lines


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "synth-high"
        assert args.placement == "cluster"
        assert args.alpha == 1.0

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "nope"])


class TestCommands:
    def test_info(self):
        code, lines = run_cli("info")
        assert code == 0
        assert any("Semantic Windows" in line for line in lines)
        assert any("cost model" in line for line in lines)

    def test_run_with_limit(self):
        code, lines = run_cli(
            "run", "--workload", "synth-high", "--scale", "0.2", "--limit", "3",
            "--sample-fraction", "0.3",
        )
        assert code == 0
        assert any("stopped after 3 results" in line for line in lines)

    def test_run_to_completion_stocks(self):
        code, lines = run_cli("run", "--workload", "stocks", "--sample-fraction", "0.3")
        assert code == 0
        assert any("query complete" in line for line in lines)

    def test_sql_command(self):
        sql = (
            "SELECT LB(x), UB(x), CARD() FROM synth_high "
            "GRID BY x BETWEEN 0 AND 1000000 STEP 50000, "
            "y BETWEEN 0 AND 1000000 STEP 50000 "
            "HAVING AVG(value) > 20 AND AVG(value) < 30 AND CARD() < 10"
        )
        code, lines = run_cli(
            "sql", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3", sql,
        )
        assert code == 0
        assert any(line.endswith("rows") for line in lines)

    def test_optimize_command(self):
        sql = (
            "SELECT CARD() FROM synth_high "
            "GRID BY x BETWEEN 0 AND 1000000 STEP 50000, "
            "y BETWEEN 0 AND 1000000 STEP 50000 "
            "HAVING CARD() <= 4 MAXIMIZE AVG(value)"
        )
        code, lines = run_cli(
            "optimize", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3", sql,
        )
        assert code == 0
        assert any("optimum" in line for line in lines)

    def test_baseline_command(self):
        code, lines = run_cli("baseline", "--workload", "synth-high", "--scale", "0.2")
        assert code == 0
        assert any("baseline:" in line for line in lines)

    def test_error_path_returns_nonzero(self):
        code, lines = run_cli(
            "sql", "--workload", "synth-high", "--scale", "0.2",
            "SELECT CARD() FROM wrong_table GRID BY x BETWEEN 0 AND 1 STEP 1 "
            "HAVING CARD() > 0",
        )
        assert code == 2
        assert any("error:" in line for line in lines)

    def test_sql_syntax_error_handled(self):
        code, lines = run_cli(
            "sql", "--workload", "synth-high", "--scale", "0.2",
            "SELECT FROM nothing",
        )
        assert code == 2
        assert any("error:" in line for line in lines)


class TestMetricsCommand:
    def test_metrics_runs_and_audits(self):
        code, lines = run_cli(
            "metrics", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3",
        )
        assert code == 0
        text = "\n".join(lines)
        assert "counters:" in text
        assert "search.results" in text
        assert "histograms:" in text
        assert any("identities checked, all hold" in line for line in lines)

    def test_metrics_json_export(self, tmp_path):
        target = tmp_path / "metrics.json"
        code, lines = run_cli(
            "metrics", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3", "--json", str(target),
        )
        assert code == 0
        from repro.io import read_metrics_json

        snapshot = read_metrics_json(target)
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["search.results"] > 0

    def test_metrics_no_audit_skips_report(self):
        code, lines = run_cli(
            "metrics", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3", "--no-audit",
        )
        assert code == 0
        assert not any("identities checked" in line for line in lines)

    def test_metrics_parser_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.workload == "synth-high"
        assert args.json is None
        assert not args.no_audit
        assert args.distributed is None
        assert args.chaos_seed is None
        assert args.successor_policy == "split"
        assert args.hedge_delay_ms == 0.0

    def test_metrics_distributed_fault_free(self):
        code, lines = run_cli(
            "metrics", "--workload", "synth-high", "--scale", "0.15",
            "--sample-fraction", "0.3", "--distributed", "4",
        )
        assert code == 0
        text = "\n".join(lines)
        assert "fault-free:" in text
        assert "outcome" in text and "complete" in text
        assert "dist.steps" in text or "net.messages_sent" in text
        assert any("identities checked, all hold" in line for line in lines)

    def test_metrics_distributed_chaos(self):
        code, lines = run_cli(
            "metrics", "--workload", "synth-high", "--scale", "0.15",
            "--sample-fraction", "0.3", "--distributed", "4",
            "--chaos-seed", "3",
        )
        assert code == 0
        text = "\n".join(lines)
        assert "chaos seed 3" in text
        assert "fault tolerance:" in text
        assert "faults_injected.crashes" in text
        assert "reassignment_msgs" in text
        assert "equivalence vs fault-free oracle" in text
        assert any("identities checked, all hold" in line for line in lines)

    def test_metrics_chaos_seed_requires_distributed(self):
        code, lines = run_cli(
            "metrics", "--workload", "synth-high", "--scale", "0.15",
            "--chaos-seed", "3",
        )
        assert code == 2
        assert any("--chaos-seed requires --distributed" in line for line in lines)

    def test_serve_command_runs_and_audits(self, tmp_path):
        target = tmp_path / "serve.json"
        code, lines = run_cli(
            "serve", "--workload", "synth-medium", "--scale", "0.15",
            "--sessions", "3", "--max-live", "2", "--slice-steps", "8",
            "--json", str(target),
        )
        assert code == 0
        text = "\n".join(lines)
        assert "after dedupe" in text
        assert "serve.sessions_completed" in text
        assert "hit rate" in text
        assert any("identities checked, all hold" in line for line in lines)

        import json

        report = json.loads(target.read_text())
        assert set(report) == {"summary", "metrics", "merged_results", "trace"}
        assert report["summary"]["sessions"]["s00"]["state"] == "done"
        assert report["merged_results"] > 0
        assert report["trace"]["sessions"] > 0

    def test_serve_deadline_checkpoint_park(self):
        code, lines = run_cli(
            "serve", "--workload", "synth-medium", "--scale", "0.15",
            "--sessions", "3", "--max-live", "1", "--policy", "deadline",
            "--park", "checkpoint", "--step-budget", "40",
        )
        assert code == 0
        assert any("(interrupted)" in line for line in lines)
        assert any("serve.preemptions" in line for line in lines)

    def test_serve_no_cache(self):
        code, lines = run_cli(
            "serve", "--workload", "synth-medium", "--scale", "0.15",
            "--sessions", "2", "--no-cache", "--slice-steps", "16",
        )
        assert code == 0
        assert not any("hit rate" in line for line in lines)

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.sessions == 4
        assert args.policy == "rr"
        assert args.park == "live"
        assert not args.no_cache
        assert args.listen is None
        assert args.record is None and args.replay is None
        assert args.tenant_quota is None

    @pytest.mark.parametrize(
        "argv, needle",
        [
            (["serve", "--max-live", "0"], "--max-live"),
            (["serve", "--sessions", "0"], "--sessions"),
            (["serve", "--queue-limit", "-1"], "--queue-limit"),
            (["serve", "--slice-steps", "0"], "--slice-steps"),
            (["serve", "--cache-budget", "0"], "--cache-budget"),
            (["serve", "--step-budget", "0"], "--step-budget"),
            (["serve", "--block-budget", "0"], "--block-budget"),
            (["serve", "--record", "x.journal"], "--record"),
            (["serve", "--listen", "localhost:notaport"], "port"),
            (["serve", "--tenant-quota", "broken"], "tenant spec"),
        ],
    )
    def test_serve_validation_exits_2_with_config_error(self, argv, needle):
        code, lines = run_cli(*argv)
        assert code == 2
        text = "\n".join(lines)
        assert text.startswith("error:") and needle in text

    def test_serve_with_tenant_quotas_throttles(self):
        code, lines = run_cli(
            "serve", "--workload", "synth-medium", "--scale", "0.15",
            "--sessions", "3", "--max-live", "2", "--policy", "wfq",
            "--step-budget", "30", "--tenant-quota", "solo=free:1",
        )
        assert code == 0
        text = "\n".join(lines)
        assert "throttled" in text
        assert any("identities checked, all hold" in line for line in lines)

    def test_serve_replay_of_committed_fixture(self):
        fixture = Path(__file__).resolve().parent / "data" / "serve_reference.journal"
        code, lines = run_cli("serve", "--replay", str(fixture))
        assert code == 0
        text = "\n".join(lines)
        assert "byte-identical" in text
        assert "16 events" in text

    def test_serve_replay_flags_tampered_journal(self, tmp_path):
        fixture = Path(__file__).resolve().parent / "data" / "serve_reference.journal"
        lines_in = fixture.read_text().splitlines()
        import json as _json

        tampered = []
        for line in lines_in:
            record = _json.loads(line)
            if record.get("kind") == "tick" and record["seq"] == 5:
                record["outcome"] = "completed" if record["outcome"] != "completed" else "ran"
            tampered.append(_json.dumps(record, sort_keys=True, separators=(",", ":")))
        bad = tmp_path / "tampered.journal"
        bad.write_text("\n".join(tampered) + "\n")
        code, lines = run_cli("serve", "--replay", str(bad))
        assert code == 1
        assert any("MISMATCH" in line for line in lines)


class TestBackendChaosCLI:
    def test_run_with_backend_chaos_seed(self):
        code, lines = run_cli(
            "run", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3", "--backend", "sqlite:",
            "--backend-chaos-seed", "3",
        )
        assert code == 0
        assert any(line.startswith("backend chaos:") for line in lines)
        outcome = [line for line in lines if line.startswith("-- outcome ")]
        assert len(outcome) == 1
        assert "backend retries" in outcome[0]

    def test_backend_chaos_parser_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.backend_chaos_seed is None
        assert args.backend_fault_rate == 0.1
