"""End-to-end service tests: real asyncio server, real socket clients.

Everything here talks to an :class:`ExplorationServer` bound to an
ephemeral port on 127.0.0.1 — the same path ``repro serve --listen``
uses — and exercises the full session lifecycle, wire-level error
codes, concurrent clients and clean shutdown.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import ProtocolError
from repro.serve import (
    AsyncServeClient,
    ExplorationServer,
    ServeClient,
    ServeConfig,
)
from repro.serve.protocol import PROTOCOL_VERSION

pytestmark = pytest.mark.serve


def _config(**overrides) -> ServeConfig:
    defaults = dict(max_live=2, queue_limit=4, slice_steps=8)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _run(coro):
    return asyncio.run(coro)


async def _with_server(config, body):
    server = ExplorationServer(config)
    host, port = await server.start()
    try:
        return await body(server, host, port)
    finally:
        await server.stop()


class TestLifecycle:
    def test_submit_poll_results_close(self):
        async def body(server, host, port):
            async with await AsyncServeClient.open(host, port) as client:
                hello = await client.hello()
                assert hello["server"] == "repro-serve"
                assert hello["version"] == PROTOCOL_VERSION
                assert hello["mode"] == "wall"
                assert hello["recording"] is False
                response = await client.submit(
                    "s1", "synth-low", scale=0.1, step_budget=16
                )
                assert response["outcome"] == "live"
                status = await client.wait("s1", poll_s=0.01, timeout_s=60.0)
                assert status["state"] == "done"
                page = await client.results("s1")
                assert page["total"] == len(page["results"]) > 0
                assert all("key" in row and "bounds" in row
                           for row in page["results"])
                incremental = await client.results("s1", since=1)
                assert incremental["results"] == page["results"][1:]

        _run(_with_server(_config(), body))

    def test_cancel_over_the_wire(self):
        async def body(server, host, port):
            async with await AsyncServeClient.open(host, port) as client:
                await client.submit("s1", "synth-low", scale=0.1)
                response = await client.cancel("s1")
                assert response["cancelled"] is True
                status = await client.wait("s1", poll_s=0.01, timeout_s=60.0)
                assert status["state"] == "done"
                assert status["interrupted"] is True

        _run(_with_server(_config(), body))

    def test_concurrent_clients_share_one_fleet(self):
        async def body(server, host, port):
            async def one(i):
                async with await AsyncServeClient.open(host, port) as client:
                    await client.submit(
                        f"c{i}", "synth-low", scale=0.1, step_budget=8
                    )
                    return await client.wait(f"c{i}", poll_s=0.01, timeout_s=60.0)

            statuses = await asyncio.gather(*(one(i) for i in range(6)))
            assert all(s["state"] == "done" for s in statuses)
            async with await AsyncServeClient.open(host, port) as client:
                stats = await client.stats()
            assert stats["counters"]["serve.sessions_completed"] == 6
            assert len(stats["latencies"]) == 6

        _run(_with_server(_config(max_live=3, queue_limit=6), body))

    def test_sync_client_against_live_server(self):
        async def body(server, host, port):
            def drive():
                with ServeClient(host, port) as client:
                    client.submit("sync1", "synth-low", scale=0.1, step_budget=8)
                    status = client.wait("sync1", poll_s=0.01, timeout_s=60.0)
                    page = client.results("sync1")
                    return status, page

            status, page = await asyncio.to_thread(drive)
            assert status["state"] == "done"
            assert page["total"] > 0

        _run(_with_server(_config(), body))


class TestWireErrors:
    def test_error_codes_reach_the_client(self):
        async def body(server, host, port):
            async with await AsyncServeClient.open(host, port) as client:
                with pytest.raises(ProtocolError) as excinfo:
                    await client.status("ghost")
                assert excinfo.value.args[0] == "unknown_session"
                with pytest.raises(ProtocolError) as excinfo:
                    await client.submit("s1", "not-a-workload")
                assert excinfo.value.args[0] == "bad_workload"
                with pytest.raises(ProtocolError) as excinfo:
                    await client.submit("s1", "synth-low", scale=9.0)
                assert excinfo.value.args[0] == "bad_config"
                await client.submit("s1", "synth-low", scale=0.1, step_budget=8)
                with pytest.raises(ProtocolError) as excinfo:
                    await client.submit("s1", "synth-low", scale=0.1)
                assert excinfo.value.args[0] == "duplicate_session"
                # The connection survives every rejected request.
                assert (await client.hello())["server"] == "repro-serve"

        _run(_with_server(_config(), body))

    def test_raw_garbage_gets_a_structured_error(self):
        async def body(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            writer.write(b'{"op": "frobnicate", "id": 3}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["error"]["code"] == "unknown_op"
            assert response["id"] == 3
            writer.close()
            await writer.wait_closed()

        _run(_with_server(_config(), body))

    def test_fleet_rejection_is_reported_not_errored(self):
        async def body(server, host, port):
            async with await AsyncServeClient.open(host, port) as client:
                assert (await client.submit(
                    "s1", "synth-low", scale=0.1))["outcome"] == "live"
                bounced = await client.submit("s2", "synth-low", scale=0.1)
                assert bounced["outcome"] == "rejected"
                assert bounced["reason"] == "fleet_capacity"

        _run(_with_server(_config(max_live=1, queue_limit=0), body))


class TestShutdown:
    def test_close_ends_connection_only(self):
        async def body(server, host, port):
            client = await AsyncServeClient.open(host, port)
            await client.submit("s1", "synth-low", scale=0.1, step_budget=8)
            response = await client.close_session()
            assert response["bye"] is True
            # Server still running: a fresh connection sees the session.
            async with await AsyncServeClient.open(host, port) as fresh:
                status = await fresh.wait("s1", poll_s=0.01, timeout_s=60.0)
                assert status["state"] == "done"

        _run(_with_server(_config(), body))

    def test_shutdown_op_stops_the_server_cleanly(self):
        async def body():
            server = ExplorationServer(_config())
            host, port = await server.start()
            async with await AsyncServeClient.open(host, port) as client:
                await client.submit("s1", "synth-low", scale=0.1, step_budget=8)
                await client.wait("s1", poll_s=0.01, timeout_s=60.0)
                response = await client.shutdown()
                assert response["stopping"] is True
            await asyncio.wait_for(server.wait_stopped(), timeout=10.0)
            with pytest.raises(ConnectionError):
                await AsyncServeClient.open(host, port)

        _run(body())

    def test_stop_is_idempotent(self):
        async def body():
            server = ExplorationServer(_config())
            await server.start()
            await server.stop()
            await server.stop()
            await asyncio.wait_for(server.wait_stopped(), timeout=5.0)

        _run(body())
