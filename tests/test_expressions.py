"""Unit tests for the vectorized expression AST."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BinaryOp, UnaryFunc, col, lit


@pytest.fixture()
def columns():
    return {"a": np.array([1.0, 2.0, 3.0]), "b": np.array([4.0, 5.0, 6.0])}


class TestEvaluation:
    def test_column(self, columns):
        np.testing.assert_allclose(col("a").evaluate(columns), [1, 2, 3])

    def test_unknown_column(self, columns):
        with pytest.raises(KeyError, match="unknown column"):
            col("z").evaluate(columns)

    def test_literal(self, columns):
        assert lit(7).evaluate(columns) == 7.0

    def test_arithmetic(self, columns):
        expr = col("a") * 2 + col("b") / 2
        np.testing.assert_allclose(expr.evaluate(columns), [4.0, 6.5, 9.0])

    def test_reflected_operators(self, columns):
        np.testing.assert_allclose((10 - col("a")).evaluate(columns), [9, 8, 7])
        np.testing.assert_allclose((2 * col("a")).evaluate(columns), [2, 4, 6])
        np.testing.assert_allclose((6 / col("a")).evaluate(columns), [6, 3, 2])
        np.testing.assert_allclose((1 + col("a")).evaluate(columns), [2, 3, 4])

    def test_power_and_sqrt(self, columns):
        expr = ((col("a") ** 2) + (col("b") ** 2)).sqrt()
        expected = np.sqrt(np.array([1, 4, 9]) + np.array([16, 25, 36]))
        np.testing.assert_allclose(expr.evaluate(columns), expected)

    def test_negation(self, columns):
        np.testing.assert_allclose((-col("a")).evaluate(columns), [-1, -2, -3])

    def test_unary_funcs(self, columns):
        np.testing.assert_allclose(UnaryFunc("abs", -col("a")).evaluate(columns), [1, 2, 3])
        np.testing.assert_allclose(
            UnaryFunc("exp", lit(0.0)).evaluate(columns), 1.0
        )


class TestStructure:
    def test_columns_collection(self):
        expr = (col("x") + col("y")) * lit(2)
        assert expr.columns() == {"x", "y"}
        assert lit(1).columns() == frozenset()

    def test_repr_roundtrips_meaningfully(self):
        expr = ((col("rowv") ** 2) + (col("colv") ** 2)).sqrt()
        assert repr(expr) == "sqrt(((rowv ^ 2) + (colv ^ 2)))"

    def test_literal_repr_int_vs_float(self):
        assert repr(lit(2)) == "2"
        assert repr(lit(2.5)) == "2.5"

    def test_invalid_binary_op(self):
        with pytest.raises(ValueError, match="unknown binary"):
            BinaryOp("%", lit(1), lit(2))

    def test_invalid_unary_func(self):
        with pytest.raises(ValueError, match="unknown function"):
            UnaryFunc("sin", lit(1))

    def test_wrap_rejects_bad_types(self):
        with pytest.raises(TypeError, match="cannot use"):
            col("a") + "nope"  # type: ignore[operator]

    def test_expressions_are_hashable(self):
        assert hash(col("a") + lit(1)) == hash(col("a") + lit(1))
