"""Tests for multi-window result analytics (Section 8 future work)."""

from __future__ import annotations

import pytest

from repro.core import Grid, Rect, ResultWindow, Window
from repro.core.analytics import (
    group_by_distance,
    nearest_neighbors,
    objective_similarity,
    window_distance,
)


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


def res(lo, hi, grid, **objectives):
    window = Window(lo, hi)
    return ResultWindow(
        window=window, bounds=window.rect(grid), objective_values=objectives
    )


class TestDistances:
    def test_window_distance(self, grid):
        a = res((0, 0), (1, 1), grid)
        b = res((4, 0), (5, 1), grid)
        assert window_distance(a, b) == pytest.approx(3.0)

    def test_overlapping_distance_zero(self, grid):
        a = res((0, 0), (3, 3), grid)
        b = res((2, 2), (4, 4), grid)
        assert window_distance(a, b) == 0.0


class TestSimilarity:
    def test_identical_values(self, grid):
        a = res((0, 0), (1, 1), grid, avg=5.0)
        b = res((2, 2), (3, 3), grid, avg=5.0)
        assert objective_similarity(a, b) == 1.0

    def test_decays_with_difference(self, grid):
        a = res((0, 0), (1, 1), grid, avg=5.0)
        near = res((2, 2), (3, 3), grid, avg=5.5)
        far = res((4, 4), (5, 5), grid, avg=50.0)
        assert objective_similarity(a, near) > objective_similarity(a, far)

    def test_no_shared_keys(self, grid):
        a = res((0, 0), (1, 1), grid, avg=5.0)
        b = res((2, 2), (3, 3), grid, total=5.0)
        assert objective_similarity(a, b) == 0.0

    def test_symmetric(self, grid):
        a = res((0, 0), (1, 1), grid, avg=5.0, total=9.0)
        b = res((2, 2), (3, 3), grid, avg=7.0, total=3.0)
        assert objective_similarity(a, b) == objective_similarity(b, a)


class TestNearestNeighbors:
    def test_pairs(self, grid):
        results = [
            res((0, 0), (1, 1), grid),
            res((1, 0), (2, 1), grid),  # adjacent to the first
            res((8, 8), (9, 9), grid),
        ]
        nn = nearest_neighbors(results)
        assert nn[0][1] == 1
        assert nn[1][1] == 0
        assert nn[2][2] > 5.0

    def test_too_few_results(self, grid):
        assert nearest_neighbors([]) == []
        assert nearest_neighbors([res((0, 0), (1, 1), grid)]) == []


class TestGrouping:
    def test_zero_threshold_is_overlap_clustering(self, grid):
        results = [
            res((0, 0), (2, 2), grid),
            res((1, 1), (3, 3), grid),
            res((7, 7), (9, 9), grid),
        ]
        groups = group_by_distance(results, 0.0)
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_large_threshold_single_group(self, grid):
        results = [
            res((0, 0), (1, 1), grid),
            res((9, 9), (10, 10), grid),
        ]
        groups = group_by_distance(results, 100.0)
        assert len(groups) == 1

    def test_single_linkage_chains(self, grid):
        results = [
            res((0, 0), (1, 1), grid),
            res((2, 0), (3, 1), grid),  # 1 away from first
            res((4, 0), (5, 1), grid),  # 1 away from second, 3 from first
        ]
        groups = group_by_distance(results, 1.0)
        assert len(groups) == 1

    def test_negative_threshold_rejected(self, grid):
        with pytest.raises(ValueError, match="non-negative"):
            group_by_distance([], -1.0)
