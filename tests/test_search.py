"""Correctness tests for the heuristic online search (Algorithm 1).

The core guarantee is exactness: whatever the configuration (prefetching,
diversification, lazy updates, placement), the search returns exactly the
windows that satisfy all conditions — validated here against a brute-force
enumeration, including on hypothesis-generated random datasets.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    SWEngine,
    SWQuery,
    Window,
    col,
    enumerate_windows,
)
from repro.storage import Database, HeapTable, TableSchema
from repro.storage.placement import cell_flat_ids
from repro.workloads import make_database


def brute_force_results(query: SWQuery, table: HeapTable) -> set[Window]:
    """Reference: evaluate every window exactly with numpy."""
    grid = query.grid
    coords = table.coordinates()
    flat = cell_flat_ids(coords, grid)
    inside = flat >= 0
    counts = np.bincount(flat[inside], minlength=grid.num_cells).reshape(grid.shape)
    sums = {}
    mins = {}
    maxs = {}
    for objective in query.conditions.content_objectives():
        if not objective.aggregate.needs_values:
            continue
        values = np.broadcast_to(
            objective.expr.evaluate({c: table.column(c) for c in table.schema.columns}),
            (table.num_rows,),
        )[inside]
        key = objective.key
        sums[key] = np.bincount(
            flat[inside], weights=values, minlength=grid.num_cells
        ).reshape(grid.shape)
        mn = np.full(grid.num_cells, np.inf)
        mx = np.full(grid.num_cells, -np.inf)
        np.minimum.at(mn, flat[inside], values)
        np.maximum.at(mx, flat[inside], values)
        mins[key] = mn.reshape(grid.shape)
        maxs[key] = mx.reshape(grid.shape)

    out = set()
    max_lengths = query.conditions.max_lengths(grid.shape)
    for window in enumerate_windows(grid, max_lengths=max_lengths):
        if not query.conditions.shape_satisfied(window):
            continue
        box = tuple(slice(l, u) for l, u in zip(window.lo, window.hi))
        ok = True
        for cond in query.conditions.content_conditions:
            agg = cond.objective.aggregate.name
            key = cond.objective.key
            count = counts[box].sum()
            if agg == "count":
                value = float(count)
            elif agg == "sum":
                value = float(sums[key][box].sum())
            elif agg == "avg":
                value = float(sums[key][box].sum() / count) if count else math.nan
            elif agg == "min":
                value = float(mins[key][box].min())
                value = value if math.isfinite(value) else math.nan
            else:
                value = float(maxs[key][box].max())
                value = value if math.isfinite(value) else math.nan
            if not cond.evaluate_value(value):
                ok = False
                break
        if ok:
            out.add(window)
    return out


def run_search(db, table_name, query, config=None, **engine_kwargs):
    engine = SWEngine(db, table_name, sample_fraction=0.3, **engine_kwargs)
    report = engine.execute(query, config)
    return report.run


class TestExactness:
    def test_matches_brute_force(self, tiny_dataset, tiny_query, tiny_db):
        run = run_search(tiny_db, tiny_dataset.name, tiny_query)
        expected = brute_force_results(tiny_query, tiny_db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    @pytest.mark.parametrize("alpha", [0.5, 2.0])
    def test_prefetch_preserves_results(self, tiny_dataset, tiny_query, alpha):
        db = make_database(tiny_dataset, "cluster")
        run = run_search(db, tiny_dataset.name, tiny_query, SearchConfig(alpha=alpha))
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    @pytest.mark.parametrize("placement", ["axis", "hilbert", "random"])
    def test_placement_preserves_results(self, tiny_dataset, tiny_query, placement):
        db = make_database(tiny_dataset, placement)
        run = run_search(db, tiny_dataset.name, tiny_query)
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    @pytest.mark.parametrize(
        "diversification", ["utility_jumps", "dist_jumps", "static"]
    )
    def test_diversification_preserves_results(self, tiny_dataset, tiny_query, diversification):
        db = make_database(tiny_dataset, "cluster")
        run = run_search(
            db,
            tiny_dataset.name,
            tiny_query,
            SearchConfig(diversification=diversification),
        )
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    def test_stale_utilities_preserve_results(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        run = run_search(
            db, tiny_dataset.name, tiny_query, SearchConfig(lazy_updates=False)
        )
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    def test_queue_refresh_preserves_results(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        run = run_search(
            db, tiny_dataset.name, tiny_query, SearchConfig(refresh_reads=10)
        )
        assert run.stats.refreshes > 0
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    def test_spilling_queue_preserves_results(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        run = run_search(
            db, tiny_dataset.name, tiny_query, SearchConfig(head_capacity=64)
        )
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    def test_noisy_estimates_preserve_results(self, tiny_dataset, tiny_query):
        from repro.sampling import NoiseModel

        db = make_database(tiny_dataset, "cluster")
        run = run_search(
            db, tiny_dataset.name, tiny_query, noise=NoiseModel(50.0)
        )
        expected = brute_force_results(tiny_query, db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected


@st.composite
def random_tables(draw):
    """Small random 2-D datasets with one value column."""
    n = draw(st.integers(30, 150))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 8, n)
    y = rng.uniform(0, 8, n)
    v = rng.normal(20, 10, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    return HeapTable("rand", schema, {"x": x, "y": y, "v": v}, tuples_per_block=8)


@st.composite
def random_queries(draw):
    card_cap = draw(st.integers(2, 8))
    threshold = draw(st.floats(min_value=5, max_value=35, allow_nan=False))
    op = draw(st.sampled_from([ComparisonOp.GT, ComparisonOp.LT]))
    conditions = [
        ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, card_cap),
        ContentCondition(ContentObjective.of("avg", col("v")), op, threshold),
    ]
    return SWQuery.build(
        dimensions=("x", "y"),
        area=[(0.0, 8.0), (0.0, 8.0)],
        steps=(1.0, 1.0),
        conditions=conditions,
    )


class TestExactnessProperty:
    @settings(max_examples=20, deadline=None)
    @given(random_tables(), random_queries(), st.floats(0.0, 2.0))
    def test_random_data_matches_brute_force(self, table, query, alpha):
        db = Database()
        db.register(table)
        engine = SWEngine(db, "rand", sample_fraction=0.5)
        run = engine.execute(query, SearchConfig(alpha=alpha)).run
        expected = brute_force_results(query, table)
        assert {r.window for r in run.results} == expected


class TestSearchBehaviour:
    def test_results_timestamps_monotone(self, tiny_dataset, tiny_query, tiny_db):
        run = run_search(tiny_db, tiny_dataset.name, tiny_query)
        times = [r.time for r in run.results]
        assert times == sorted(times)
        assert run.completion_time_s >= (times[-1] if times else 0.0)

    def test_no_duplicate_results(self, tiny_dataset, tiny_query, tiny_db):
        run = run_search(tiny_db, tiny_dataset.name, tiny_query)
        windows = [r.window for r in run.results]
        assert len(windows) == len(set(windows))

    def test_objective_values_reported(self, tiny_dataset, tiny_query, tiny_db):
        run = run_search(tiny_db, tiny_dataset.name, tiny_query)
        for result in run.results:
            value = result.objective_values["avg(value)"]
            assert 20.0 < value < 30.0

    def test_explored_at_most_generated(self, tiny_dataset, tiny_query, tiny_db):
        run = run_search(tiny_db, tiny_dataset.name, tiny_query)
        # Parked/reinserted windows can be explored once each at most.
        assert run.stats.explored <= run.stats.generated

    def test_shape_pruning_limits_generation(self, tiny_dataset, tiny_query, tiny_db):
        run = run_search(tiny_db, tiny_dataset.name, tiny_query)
        grid = tiny_query.grid
        unpruned = sum(1 for _ in enumerate_windows(grid))
        assert run.stats.generated < unpruned

    def test_min_length_start_pruning(self, tiny_dataset, tiny_db):
        grid = tiny_dataset.grid
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
            steps=grid.steps,
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, 3),
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.LE, 4),
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.EQ, 2),
            ],
        )
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        search = engine.prepare(query)
        run = search.run()
        # No generated window is ever shorter than the minimum lengths.
        assert all(r.window.length(0) >= 3 for r in run.results)
        expected = brute_force_results(query, tiny_db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected

    def test_time_limit_interrupts(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "axis")
        run = run_search(
            db, tiny_dataset.name, tiny_query, SearchConfig(time_limit_s=0.05)
        )
        assert run.interrupted

    def test_anti_monotone_pruning_exact(self, tiny_dataset, tiny_db):
        grid = tiny_dataset.grid
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
            steps=grid.steps,
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 6),
                ContentCondition(ContentObjective.of("count"), ComparisonOp.LT, 150.0),
            ],
        )
        run = run_search(tiny_db, tiny_dataset.name, query, SearchConfig(assume_nonnegative=True))
        expected = brute_force_results(query, tiny_db.table(tiny_dataset.name))
        assert {r.window for r in run.results} == expected
        assert run.stats.pruned_extensions > 0

    def test_refresh_skips_fresh_frontier(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.2)
        search = engine.prepare(tiny_query)
        search._seed_start_windows()
        # Nothing was read since seeding: every frontier entry is current,
        # so a refresh would re-push the whole frontier for nothing.
        search._refresh_impl()
        assert search.stats.refresh_skipped == 1
        assert search.stats.refreshes == 0
        # A read bumps the data version; the frontier goes stale.
        _, window, _ = search.queue.pop()
        search.data.read_window(window)
        search._refresh_impl()
        assert search.stats.refreshes == 1
        assert search.stats.refresh_skipped == 1
        # The refresh restamped every entry at the new version: skip again.
        search._refresh_impl()
        assert search.stats.refresh_skipped == 2
        assert search.stats.refreshes == 1

    def test_periodic_refresh_still_fires_on_stale_frontier(
        self, tiny_dataset, tiny_query, tiny_db
    ):
        run = run_search(
            tiny_db, tiny_dataset.name, tiny_query, SearchConfig(refresh_reads=1)
        )
        assert run.stats.refreshes > 0

    def test_extension_counters_match_scalar_oracle(self, tiny_dataset):
        grid = tiny_dataset.grid
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(grid.area[0].lo, grid.area[0].hi), (grid.area[1].lo, grid.area[1].hi)],
            steps=grid.steps,
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 6),
                ContentCondition(ContentObjective.of("count"), ComparisonOp.LT, 150.0),
            ],
        )
        stats = []
        for use_kernels in (True, False):
            db = make_database(tiny_dataset, "cluster")
            run = run_search(
                db,
                tiny_dataset.name,
                query,
                SearchConfig(assume_nonnegative=True),
                use_kernels=use_kernels,
            )
            stats.append((run.stats.capped_extensions, run.stats.pruned_extensions))
        # The batched expansion counts caps and prunes exactly like the
        # scalar oracle, and both actually fire on this query.
        assert stats[0] == stats[1]
        assert stats[0][0] > 0
        assert stats[0][1] > 0


class TestWindowKeys:
    """Packed integer dedup keys for the generated-windows set."""

    @pytest.fixture()
    def search(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.2)
        return engine.prepare(tiny_query)

    def test_key_is_injective_over_the_grid(self, search):
        seen = {}
        for window in enumerate_windows(search.grid, max_lengths=(4, 4)):
            key = search._window_key(window)
            assert 0 <= key < search._key_bound
            assert key not in seen, (window, seen.get(key))
            seen[key] = window

    def test_batch_keys_match_scalar_keys(self, search):
        shape = search.grid.shape
        lengths = (2, 3)
        counts = tuple(s - l + 1 for s, l in zip(shape, lengths))
        lows = np.indices(counts).reshape(len(shape), -1).T
        batch = search._window_keys(lows, lengths)
        for pos, key in zip(map(tuple, lows.tolist()), batch):
            window = Window(pos, tuple(p + l for p, l in zip(pos, lengths)))
            assert key == search._window_key(window)

    def test_push_window_dedups(self, search):
        window = Window((0, 0), (2, 2))
        search._push_window(window)
        generated = search.stats.generated
        size = len(search.queue)
        search._push_window(window)
        assert search.stats.generated == generated
        assert len(search.queue) == size

    def test_seed_keys_skip_the_dedup_set(self, search):
        search._seed_start_windows()
        # Seed placements are never registered: a neighbor always strictly
        # exceeds the minimal shape in some dimension, so no candidate key
        # can ever collide with a seed key — registering them would be
        # dead weight on the dedup set.
        mins = search._min_lengths
        seed_key = search._window_key(Window((0, 0), tuple(mins)))
        assert seed_key not in search._generated
        # Non-seed windows still dedup through _push_window.
        grown = (mins[0] + 1,) + tuple(mins[1:])
        window = Window((0, 0), grown)
        search._push_window(window)
        generated = search.stats.generated
        size = len(search.queue)
        search._push_window(window)
        assert search.stats.generated == generated
        assert len(search.queue) == size

    def test_batch_and_scalar_seeding_mark_same_keys(self, tiny_dataset, tiny_query):
        searches = []
        for use_kernels in (True, False):
            db = make_database(tiny_dataset, "cluster")
            engine = SWEngine(
                db, tiny_dataset.name, sample_fraction=0.2, use_kernels=use_kernels
            )
            search = engine.prepare(tiny_query)
            search._seed_start_windows()
            searches.append(search)
        assert searches[0]._generated == searches[1]._generated
        assert searches[0].stats.generated == searches[1].stats.generated
