"""The paper's headline claims, asserted end-to-end at test scale.

Each test encodes one sentence of the paper's abstract/intro/conclusions
as an executable check — the narrative-level integration suite on top of
the per-module tests.
"""

from __future__ import annotations

import pytest

from repro.core import SearchConfig, SWEngine
from repro.dbms import run_sql_baseline
from repro.workloads import make_database, synthetic_dataset, synthetic_query


@pytest.fixture(scope="module")
def setting():
    dataset = synthetic_dataset("high", scale=0.25, seed=55)
    return dataset, synthetic_query(dataset)


class TestHeadlineClaims:
    def test_online_results_quickly_and_continuously(self, setting):
        """'SW can offer online results quickly and continuously' — the
        first result arrives in a small fraction of the completion time
        and no later result gap dominates the run."""
        dataset, query = setting
        db = make_database(dataset, "cluster")
        run = SWEngine(db, dataset.name, sample_fraction=0.2).execute(
            query, SearchConfig(alpha=1.0)
        ).run
        assert run.first_result_time_s < run.completion_time_s * 0.25
        gaps = [
            b.time - a.time for a, b in zip(run.results, run.results[1:])
        ]
        assert max(gaps) < run.completion_time_s * 0.8

    def test_little_or_no_degradation_in_completion_time(self, setting):
        """'...with little or no degradation in query completion times' —
        on a clustered placement the online engine's completion is within
        a small factor of the blocking baseline's."""
        dataset, query = setting
        db_sw = make_database(dataset, "cluster")
        sw = SWEngine(db_sw, dataset.name, sample_fraction=0.2).execute(query).run
        db_base = make_database(dataset, "cluster")
        base = run_sql_baseline(db_base, dataset.name, query)
        assert sw.completion_time_s < base.total_time_s * 1.5

    def test_results_before_baseline_finishes(self, setting):
        """The human-in-the-loop payoff: a large share of the exact result
        set is already on screen before the traditional DBMS would have
        produced anything at all."""
        dataset, query = setting
        db_base = make_database(dataset, "cluster")
        base = run_sql_baseline(db_base, dataset.name, query)
        db_sw = make_database(dataset, "cluster")
        run = SWEngine(db_sw, dataset.name, sample_fraction=0.2).execute(
            query, SearchConfig(alpha=1.0)
        ).run
        early = sum(1 for r in run.results if r.time < base.total_time_s)
        assert early == run.num_results, (
            "every exact result should precede the baseline's blocking output"
        )

    def test_exact_results_whatever_the_knobs(self, setting):
        """'all results are guaranteed to be exact' — the result set is
        invariant across every tuning dimension at once."""
        dataset, query = setting
        reference = None
        for placement, config in [
            ("cluster", SearchConfig()),
            ("axis", SearchConfig(alpha=2.0)),
            ("hilbert", SearchConfig(alpha=0.5, diversification="utility_jumps")),
            ("cluster", SearchConfig(s=0.3, refresh_reads=25)),
        ]:
            db = make_database(dataset, placement)
            run = SWEngine(db, dataset.name, sample_fraction=0.2).execute(
                query, config
            ).run
            windows = {r.window for r in run.results}
            if reference is None:
                reference = windows
            assert windows == reference

    def test_prefetching_reduces_dispersed_completion(self, setting):
        """'prefetching allowed us to reduce the completion time
        significantly' on axis-ordered data."""
        dataset, query = setting
        db0 = make_database(dataset, "axis")
        no_pref = SWEngine(db0, dataset.name, sample_fraction=0.2).execute(
            query, SearchConfig(alpha=0.0)
        ).run
        db2 = make_database(dataset, "axis")
        pref = SWEngine(db2, dataset.name, sample_fraction=0.2).execute(
            query, SearchConfig(alpha=2.0)
        ).run
        assert pref.completion_time_s < no_pref.completion_time_s / 2

    def test_sampling_guides_not_approximates(self, setting):
        """Sampling steers the order only: degrading the sample changes
        *when* results arrive, never *which* results arrive."""
        dataset, query = setting
        outcomes = {}
        for fraction in (0.02, 0.5):
            db = make_database(dataset, "cluster")
            run = SWEngine(db, dataset.name, sample_fraction=fraction).execute(
                query
            ).run
            outcomes[fraction] = ({r.window for r in run.results}, run.all_results_time_s)
        assert outcomes[0.02][0] == outcomes[0.5][0]
