"""End-to-end fidelity test for the paper's Example 1 / Figure 2 query."""

from __future__ import annotations

import pytest

from repro.core import SearchConfig, SWEngine
from repro.sql import execute_sql
from repro.workloads import example1_query, make_database, sdss_dataset


@pytest.fixture(scope="module")
def sky():
    dataset = sdss_dataset(scale=0.3, seed=3)
    return dataset, make_database(dataset, "cluster")


class TestExample1:
    def test_every_bright_region_found_exactly(self, sky):
        dataset, db = sky
        query = example1_query(dataset)
        run = SWEngine(db, dataset.name, sample_fraction=0.2).execute(
            query, SearchConfig(alpha=1.0)
        ).run
        assert run.num_results >= len(dataset.meta["bright_regions"])
        for (lo, hi) in dataset.meta["bright_regions"]:
            exact = [
                r
                for r in run.results
                if r.bounds.lower == (lo[0], lo[1]) and r.bounds.upper == (hi[0], hi[1])
            ]
            assert exact, f"planted bright region {lo}..{hi} not returned exactly"
            assert exact[0].objective_values["avg(brightness)"] > 0.8

    def test_all_results_are_3_by_2(self, sky):
        dataset, db = sky
        query = example1_query(dataset)
        run = SWEngine(db, dataset.name, sample_fraction=0.2).execute(query).run
        for r in run.results:
            assert r.window.lengths == (3, 2)
            assert r.bounds[0].length == pytest.approx(3.0)
            assert r.bounds[1].length == pytest.approx(2.0)

    def test_figure2_sql_form(self, sky):
        """The Figure 2 statement (bounds adapted to our area) runs as-is."""
        dataset, db = sky
        labels, rows = execute_sql(
            db,
            """
            SELECT LB(ra), UB(ra), LB(dec), UB(dec), AVG(brightness)
            FROM sdss
            GRID BY ra BETWEEN 113 AND 229 STEP 1,
                    dec BETWEEN 8 AND 34 STEP 1
            HAVING AVG(brightness) > 0.8 AND
                   LEN(ra) = 3 AND
                   LEN(dec) = 2
            """,
            sample_fraction=0.2,
        )
        assert labels == ("LB(ra)", "UB(ra)", "LB(dec)", "UB(dec)", "AVG(brightness)")
        assert len(rows) >= 3
        for row in rows:
            assert row[1] - row[0] == pytest.approx(3.0)
            assert row[3] - row[2] == pytest.approx(2.0)
            assert row[4] > 0.8
