"""Serving-layer semantics: admission, scheduling, determinism contract.

The contract under test (DESIGN.md §12): with a fixed policy, seed and
submission order the whole interleaved run is byte-reproducible; sessions
over disjoint tables don't observe each other at all; a session's
observables equal a solo run of the same query against an equally warmed
cache; and parking "live" is byte-equivalent to parking through the
checkpoint path.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.core import SearchConfig, SWEngine
from repro.core.trace import EventKind, SearchTrace
from repro.io import metrics_to_json
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.serve import (
    DeadlinePolicy,
    RoundRobinPolicy,
    SemanticCache,
    SessionManager,
    SessionState,
    UtilityPolicy,
    make_policy,
    serve_workload,
)
from repro.storage.buffer import BufferPool, PoolGroup
from repro.workloads import make_database, synthetic_dataset, synthetic_query

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def workload():
    dataset = synthetic_dataset("medium", scale=0.15, seed=5)
    return dataset, synthetic_query(dataset)


def _session_payload(session) -> str:
    """Everything observable about one serve session, as comparable bytes."""
    run, trace, registry = session.run, session.trace, session.registry
    return json.dumps(
        {
            "results": [
                {
                    "window": [list(r.window.lo), list(r.window.hi)],
                    "bounds": [list(r.bounds.lower), list(r.bounds.upper)],
                    "objectives": sorted(r.objective_values.items()),
                    "time": r.time,
                }
                for r in run.results
            ],
            "completion_time_s": run.completion_time_s,
            "interrupted": run.interrupted,
            "trace": [
                [e.kind.value, e.time, repr(e.window), repr(sorted(e.detail.items()))]
                for e in trace
            ],
        },
        sort_keys=True,
    ) + metrics_to_json(registry)


def _solo_payload(dataset, query, cache) -> str:
    """The same query run alone against ``cache``, same observables."""
    engine = SWEngine(make_database(dataset, "cluster"), dataset.name)
    if cache is not None:
        engine.attach_semantic_cache(cache)
    trace, registry = SearchTrace(), MetricsRegistry()
    run = engine.prepare(query, SearchConfig(alpha=1.0), trace=trace, metrics=registry).run()
    return _session_payload(
        SimpleNamespace(run=run, trace=trace, registry=registry)
    )


def _serve(workloads, max_live=2, queue_limit=8, policy="rr", park="live",
           slice_steps=8, seed=0, cache=True, **submit_kw):
    """Submit (name, dataset, query, config) tuples and run to completion."""
    registry = MetricsRegistry()
    trace = SearchTrace()
    manager = SessionManager(
        max_live=max_live,
        queue_limit=queue_limit,
        cache=SemanticCache() if cache else None,
        metrics=registry,
        trace=trace,
    )
    for name, dataset, query, config in workloads:
        manager.submit(name, dataset, query, config, **submit_kw)
    serve_workload(manager, policy=policy, slice_steps=slice_steps, park=park, seed=seed)
    return manager, registry, trace


class TestAdmission:
    def test_backpressure_states_and_counters(self, workload):
        dataset, query = workload
        registry = MetricsRegistry()
        manager = SessionManager(max_live=1, queue_limit=1, metrics=registry)
        a = manager.submit("a", dataset, query)
        b = manager.submit("b", dataset, query)
        c = manager.submit("c", dataset, query)
        assert a.state is SessionState.LIVE
        assert b.state is SessionState.WAITING
        assert c.state is SessionState.REJECTED
        assert c.finished and c.results == []
        counters = registry.snapshot()["counters"]
        assert counters["serve.sessions_submitted"] == 3
        assert counters["serve.sessions_admitted"] == 2
        assert counters["serve.sessions_rejected"] == 1
        # Rejected handles are stubs: not tracked, no pool registered.
        assert "c" not in manager.sessions
        assert manager.pool_group.names() == ["a", "b"]

    def test_duplicate_name_rejected(self, workload):
        dataset, query = workload
        manager = SessionManager()
        manager.submit("a", dataset, query)
        with pytest.raises(ValueError, match="already exists"):
            manager.submit("a", dataset, query)

    def test_budget_validation(self, workload):
        dataset, query = workload
        manager = SessionManager()
        with pytest.raises(ValueError, match="step_budget"):
            manager.submit("a", dataset, query, step_budget=0)
        with pytest.raises(ValueError, match="max_live"):
            SessionManager(max_live=0)

    def test_serve_drains_queued_sessions_as_slots_free(self, workload):
        """Waiting sessions are admitted when live ones finish; nothing
        submitted within queue capacity is ever lost."""
        dataset, query = workload
        registry = MetricsRegistry()
        manager = SessionManager(max_live=1, queue_limit=3, metrics=registry)
        handles = [
            manager.submit(f"s{i}", dataset, query, step_budget=10)
            for i in range(4)
        ]
        assert [h.state for h in handles] == [
            SessionState.LIVE, SessionState.WAITING,
            SessionState.WAITING, SessionState.WAITING,
        ]
        serve_workload(manager)
        assert all(h.state is SessionState.DONE for h in handles)
        assert all(h.run is not None and h.steps_taken == 10 for h in handles)
        counters = registry.snapshot()["counters"]
        assert counters["serve.sessions_admitted"] == 4
        assert counters["serve.sessions_completed"] == 4
        assert counters.get("serve.sessions_rejected", 0) == 0
        InvariantAuditor(registry).verify()

    def test_serve_with_only_rejected_sessions_returns_immediately(self, workload):
        dataset, query = workload
        registry = MetricsRegistry()
        manager = SessionManager(max_live=1, queue_limit=0, metrics=registry)
        live = manager.submit("keeper", dataset, query, step_budget=5)
        rejects = [manager.submit(f"r{i}", dataset, query) for i in range(3)]
        serve_workload(manager)
        assert live.state is SessionState.DONE
        assert all(r.state is SessionState.REJECTED for r in rejects)
        # A second serve pass over a drained fleet is a clean no-op.
        serve_workload(manager)
        counters = registry.snapshot()["counters"]
        assert counters["serve.sessions_completed"] == 1
        assert counters["serve.sessions_rejected"] == 3
        InvariantAuditor(registry).verify()

    def test_rejected_stub_is_inert_but_queryable(self, workload):
        dataset, query = workload
        manager = SessionManager(max_live=1, queue_limit=0)
        manager.submit("a", dataset, query, step_budget=5)
        stub = manager.submit("b", dataset, query)
        assert stub.state is SessionState.REJECTED
        assert stub.finished and stub.results == []
        # Cancelling a stub must not blow up or resurrect it.
        stub.cancel()
        assert stub.state is SessionState.REJECTED


class TestDeterminism:
    def test_interleaved_run_byte_reproducible(self, workload):
        dataset, query = workload
        work = [(f"s{i}", dataset, query, None) for i in range(3)]
        payloads = []
        for _ in range(2):
            manager, registry, trace = _serve(work, max_live=2, seed=11)
            payloads.append(
                (
                    [_session_payload(s) for s in manager.sessions.values()],
                    metrics_to_json(registry),
                    [(e.kind.value, e.time, repr(sorted(e.detail.items()))) for e in trace],
                )
            )
            audit = InvariantAuditor(registry.snapshot()).report()
            assert audit["ok"], audit["violations"]
        assert payloads[0] == payloads[1]

    def test_disjoint_tables_do_not_interfere(self):
        """Interleaved sessions over distinct tables == their solo runs."""
        loads = []
        for seed in (5, 6):
            dataset = synthetic_dataset("medium", scale=0.15, seed=seed)
            loads.append((dataset, synthetic_query(dataset)))
        work = [(f"s{i}", d, q, None) for i, (d, q) in enumerate(loads)]
        manager, _, _ = _serve(work, max_live=2, slice_steps=8)
        for (dataset, query), session in zip(loads, manager.sessions.values()):
            assert _session_payload(session) == _solo_payload(
                dataset, query, SemanticCache()
            )

    def test_warm_cache_equivalence(self, workload):
        """Session B after A == solo B against a cache solo A warmed."""
        dataset, query = workload
        work = [("a", dataset, query, None), ("b", dataset, query, None)]
        manager, _, _ = _serve(work, max_live=1, queue_limit=2)

        shared = SemanticCache()
        solo_a = _solo_payload(dataset, query, shared)  # warms `shared`
        solo_b = _solo_payload(dataset, query, shared)
        assert _session_payload(manager.sessions["a"]) == solo_a
        assert _session_payload(manager.sessions["b"]) == solo_b

    def test_checkpoint_park_equals_live_park(self, workload):
        dataset, query = workload
        work = [(f"s{i}", dataset, query, None) for i in range(2)]
        live_mgr, _, _ = _serve(work, max_live=2, park="live")
        ckpt_mgr, ckpt_reg, _ = _serve(work, max_live=2, park="checkpoint")
        for name in live_mgr.sessions:
            assert _session_payload(live_mgr.sessions[name]) == _session_payload(
                ckpt_mgr.sessions[name]
            )
        # The checkpoint leg really went through the capture path.
        assert all(s.parks > 0 for s in ckpt_mgr.sessions.values())
        counters = ckpt_reg.snapshot()["counters"]
        assert counters["serve.parks"] == counters["serve.resumes"] > 0


class TestPolicies:
    def test_round_robin_cycles_all_live(self, workload):
        dataset, query = workload
        work = [(f"s{i}", dataset, query, None) for i in range(3)]
        manager, registry, trace = _serve(work, max_live=3, slice_steps=4)
        preempted = {e.detail["session"] for e in trace if e.kind is EventKind.PREEMPT}
        assert preempted == {"s0", "s1", "s2"}
        assert all(s.slices_taken > 1 for s in manager.sessions.values())

    def test_round_robin_seed_changes_interleaving(self):
        sessions = [
            SimpleNamespace(name=f"s{i}", frontier_priority=lambda: None)
            for i in range(4)
        ]
        orders = {}
        for seed in (0, 1):
            policy = RoundRobinPolicy(seed)
            for s in sessions:
                policy.on_admit(s)
            orders[seed] = [policy.pick(sessions).name for _ in range(4)]
            assert sorted(orders[seed]) == ["s0", "s1", "s2", "s3"]
        assert orders[0] != orders[1]

    def test_utility_policy_picks_best_frontier(self):
        def stub(name, priority):
            return SimpleNamespace(name=name, frontier_priority=lambda p=priority: p)

        policy = UtilityPolicy()
        assert policy.pick([stub("a", 1.0), stub("b", 5.0)]).name == "b"
        # Empty frontiers lose to any work; name breaks exact ties.
        assert policy.pick([stub("a", None), stub("b", 0.0)]).name == "b"
        assert policy.pick([stub("b", 2.0), stub("a", 2.0)]).name == "a"

    def test_deadline_preemption_evicts_latest_deadline(self, workload):
        dataset, query = workload
        work = [
            ("late", dataset, query, SearchConfig(alpha=1.0, deadline_s=1e6)),
            ("early", dataset, query, SearchConfig(alpha=1.0, deadline_s=10.0)),
        ]
        manager, registry, trace = _serve(
            work, max_live=1, queue_limit=2, policy="deadline"
        )
        counters = registry.snapshot()["counters"]
        assert counters["serve.preemptions"] >= 1
        evictions = [
            e.detail for e in trace
            if e.kind is EventKind.PREEMPT and "evicted_for" in e.detail
        ]
        assert evictions[0] == {
            "session": "late", "mode": "checkpoint", "evicted_for": "early",
        }
        assert all(s.state is SessionState.DONE for s in manager.sessions.values())

    def test_deadline_policy_orders_by_deadline(self):
        def stub(name, deadline):
            return SimpleNamespace(name=name, deadline=deadline)

        policy = DeadlinePolicy()
        live = [stub("a", 50.0), stub("b", None)]
        assert policy.pick(live).name == "a"
        # No-deadline entrants never preempt; no-deadline victims always lose.
        assert policy.preempt_victim(live, [stub("c", None)]) is None
        victim, entrant = policy.preempt_victim(live, [stub("c", 5.0)])
        assert (victim.name, entrant.name) == ("b", "c")

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("fifo")


class TestBudgets:
    def test_step_budget_interrupts(self, workload):
        dataset, query = workload
        registry = MetricsRegistry()
        manager = SessionManager(max_live=1, metrics=registry)
        session = manager.submit("a", dataset, query, step_budget=7)
        serve_workload(manager, slice_steps=4)
        assert session.run.interrupted
        assert session.run.interrupt_reason == "step_budget"
        assert session.steps_taken == 7
        assert session.state is SessionState.DONE

    def test_block_budget_interrupts(self, workload):
        dataset, query = workload
        manager = SessionManager(max_live=1)
        session = manager.submit("a", dataset, query, block_budget=3)
        serve_workload(manager, slice_steps=4)
        assert session.run.interrupted
        assert session.run.interrupt_reason == "block_budget"
        assert session.search.data.blocks_read_cumulative > 3


class TestResults:
    def test_merged_results_dedupe_identical_sessions(self, workload):
        dataset, query = workload
        work = [(f"s{i}", dataset, query, None) for i in range(3)]
        manager, _, _ = _serve(work, max_live=3)
        solo = len(manager.sessions["s0"].results)
        assert solo > 0
        merged = manager.merged_results()
        assert len(merged) == solo
        assert sum(len(s.results) for s in manager.sessions.values()) == 3 * solo
        # Attribution goes to the earliest discovery (ties: submit order).
        times = {name: s.results[0].time for name, s in manager.sessions.items()}
        earliest = min(times, key=lambda n: (times[n], n))
        assert merged[0][0] == earliest

    def test_merged_results_keep_distinct_tables_apart(self):
        loads = []
        for seed in (5, 6):
            dataset = synthetic_dataset("medium", scale=0.15, seed=seed)
            loads.append((dataset, synthetic_query(dataset)))
        work = [(f"s{i}", d, q, None) for i, (d, q) in enumerate(loads)]
        manager, _, _ = _serve(work, max_live=2)
        per_session = sum(len(s.results) for s in manager.sessions.values())
        assert len(manager.merged_results()) == per_session

    def test_summary_shape(self, workload):
        dataset, query = workload
        manager, _, _ = _serve([("a", dataset, query, None)], max_live=1)
        summary = manager.summary()
        assert summary["sessions"]["a"]["state"] == "done"
        assert summary["sessions"]["a"]["results"] > 0
        assert summary["pool_totals"]["pools"] == 0  # unregistered at finish
        assert summary["cache"]["resident_cells"] > 0


def _pool(capacity: int) -> BufferPool:
    from repro.costs import DEFAULT_COST_MODEL
    from repro.storage.database import SimClock
    from repro.storage.disk import SimulatedDisk

    disk = SimulatedDisk(64, DEFAULT_COST_MODEL, SimClock())
    return BufferPool(capacity, disk)


class TestPoolGroup:
    def test_register_totals_rebalance(self):
        group = PoolGroup()
        a, b = _pool(10), _pool(20)
        group.register("a", a)
        group.register("b", b)
        with pytest.raises(ValueError, match="already registered"):
            group.register("a", a)
        assert group.names() == ["a", "b"] and len(group) == 2
        assert group.totals()["capacity"] == 30
        shares = group.rebalance(7)
        assert shares == {"a": 4, "b": 3}
        assert a.capacity == 4 and b.capacity == 3
        group.unregister("a")
        group.unregister("missing")  # no-op
        assert group.names() == ["b"]

    def test_rebalance_floors_at_one_block(self):
        group = PoolGroup()
        pools = {n: _pool(8) for n in ("a", "b", "c")}
        for name, pool in pools.items():
            group.register(name, pool)
        shares = group.rebalance(2)
        assert all(v >= 1 for v in shares.values())
