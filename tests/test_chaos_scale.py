"""Cluster-scale chaos suite: N-worker recovery, partitions, replay.

Scales the chaos invariants from the 4-worker suite up to 16 and 64
workers under :meth:`FaultPlan.chaos_scale` plans (correlated rack
storms, healing link partitions, lossy networks, straggler disks):

* **Equivalence** — a recoverable chaos run's merged result set equals
  the fault-free oracle's; a degraded run's manifest exactly accounts
  for every missing window.
* **Replay determinism** — the same plan over the same workload yields
  byte-identical reports, including the partition cut/heal schedule.
* **Bounded recovery traffic** — reassignment messages scale with the
  lost cells and touched survivors, never cells x workers.

Plus unit coverage of the pieces: batched policy-aware reassignment,
quorum fencing of isolated-but-live workers, speculative hedging, fault
plan composition, and construction-time config validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    Grid,
    Rect,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.core.trace import EventKind, SearchTrace
from repro.distributed import (
    COORDINATOR,
    CrashStorm,
    DistributedConfig,
    FailureDomain,
    FaultInjector,
    FaultPlan,
    LinkPartition,
    OwnershipRouter,
    SuccessorPolicy,
    WorkerCrash,
    run_distributed,
)
from repro.distributed.partitioning import plan_partitions
from repro.errors import ConfigError
from repro.storage import TableSchema
from repro.workloads import Dataset

pytestmark = [pytest.mark.chaos, pytest.mark.chaos_scale]

CHAOS_SEEDS = [1, 2, 3]


def _scale_dataset(cols: int = 96, seed: int = 1, n: int = 3000):
    """A wide dim-0 dataset so up to ``cols`` workers each own a slab."""
    rng = np.random.default_rng(seed)
    columns = {
        "x": rng.uniform(0, cols, n),
        "y": rng.uniform(0, 2, n),
        "v": rng.normal(20, 8, n),
    }
    grid = Grid(Rect.from_bounds([(0.0, float(cols)), (0.0, 2.0)]), (1.0, 1.0))
    dataset = Dataset(
        name="wide",
        columns=columns,
        schema=TableSchema(["x", "y", "v"], ["x", "y"]),
        grid=grid,
    )
    query = SWQuery.build(
        dimensions=("x", "y"),
        area=[(0.0, float(cols)), (0.0, 2.0)],
        steps=(1.0, 1.0),
        conditions=[
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4),
            ContentCondition(
                ContentObjective.of("avg", col("v")), ComparisonOp.GT, 22.0
            ),
        ],
    )
    return dataset, query


def _config(num_workers: int, **kwargs) -> DistributedConfig:
    kwargs.setdefault("sample_fraction", 0.5)
    return DistributedConfig(num_workers=num_workers, **kwargs)


def _result_set(report):
    return sorted((r.window.lo, r.window.hi) for r in report.results)


_BASELINES: dict[int, object] = {}


def _baseline(num_workers: int):
    """Fault-free oracle per cluster size (cached across tests)."""
    if num_workers not in _BASELINES:
        dataset, query = _scale_dataset()
        _BASELINES[num_workers] = run_distributed(
            dataset, query, _config(num_workers)
        )
    return _BASELINES[num_workers]


class TestChaosEquivalenceAtScale:
    """Recovered results equal the fault-free oracle at 16 and 64 workers."""

    @pytest.mark.parametrize("num_workers", [16, 64])
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_recovered_equals_oracle(self, num_workers, seed):
        baseline = _baseline(num_workers)
        dataset, query = _scale_dataset()
        plan = FaultPlan.chaos_scale(
            seed, num_workers, crash_at_s=baseline.total_time_s / 3.0
        )
        report = run_distributed(dataset, query, _config(num_workers, faults=plan))

        assert report.outcome in ("complete", "degraded")
        storm_victims = set(plan.storms[0].victims)
        assert set(report.crashed_workers) == storm_victims
        assert report.recovered_anchors > 0

        oracle = _result_set(baseline)
        got = _result_set(report)
        if report.outcome == "complete":
            assert got == oracle
        else:
            # The manifest must exactly account for every missing window:
            # its anchor lies in an unrecovered slab or it was counted
            # as an abandoned in-flight window.
            missing = set(oracle) - set(got)
            slabs = report.degraded.lost_slabs
            unaccounted = [
                lo
                for lo, _ in missing
                if not any(s_lo <= int(lo[0]) < s_hi for s_lo, s_hi in slabs)
            ]
            assert len(unaccounted) <= report.degraded.lost_windows
        assert not set(got) - set(oracle)

    @pytest.mark.parametrize("num_workers", [16, 64])
    def test_recovery_traffic_bounded(self, num_workers):
        """Reassignment messages scale with lost cells, not cells x workers."""
        baseline = _baseline(num_workers)
        dataset, query = _scale_dataset()
        plan = FaultPlan.chaos_scale(
            1, num_workers, crash_at_s=baseline.total_time_s / 3.0
        )
        report = run_distributed(dataset, query, _config(num_workers, faults=plan))
        assert report.outcome == "complete"
        # One contiguous rack dies: at most 2 adoption directives (one
        # per adjacent survivor) plus the touched-survivor notifications.
        assert report.cells_reassigned >= len(report.crashed_workers)
        assert report.reassignment_msgs <= 2 + num_workers // 4
        assert report.reassignment_msgs < report.cells_reassigned + num_workers // 4


class TestReplayDeterminism:
    """Same plan + same workload -> byte-identical reports."""

    def _fingerprint(self, report):
        return (
            _result_set(report),
            report.total_time_s,
            report.retries,
            report.hedges,
            report.duplicates_ignored,
            report.messages_lost,
            report.reassignment_msgs,
            report.cells_reassigned,
            report.crashed_workers,
            report.fenced_workers,
            dict(report.faults_injected),
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_scale_replays_identically(self, seed):
        dataset, query = _scale_dataset()
        plan = FaultPlan.chaos_scale(seed, 16, crash_at_s=0.03)
        runs = [
            run_distributed(dataset, query, _config(16, faults=plan))
            for _ in range(2)
        ]
        assert self._fingerprint(runs[0]) == self._fingerprint(runs[1])

    def test_partition_heal_schedule_replays_identically(self):
        """An explicit cut/heal schedule is part of the deterministic replay."""
        dataset, query = _scale_dataset()
        plan = FaultPlan(
            seed=7,
            crashes=(WorkerCrash(5, 0.03),),
            partitions=(
                LinkPartition(2, 0.01, 0.022),
                LinkPartition(2, 0.01, 0.022, peer=3),
                LinkPartition(9, 0.05, 0.06),
            ),
            drop_prob=0.05,
            duplicate_prob=0.05,
            delay_prob=0.05,
        )
        trace_a, trace_b = SearchTrace(), SearchTrace()
        run_a = run_distributed(dataset, query, _config(16, faults=plan), trace=trace_a)
        run_b = run_distributed(dataset, query, _config(16, faults=plan), trace=trace_b)
        assert self._fingerprint(run_a) == self._fingerprint(run_b)
        edges_a = [
            (e.time, e.detail["worker"], e.detail["peer"], e.detail["phase"])
            for e in trace_a.events(EventKind.PARTITION)
        ]
        edges_b = [
            (e.time, e.detail["worker"], e.detail["peer"], e.detail["phase"])
            for e in trace_b.events(EventKind.PARTITION)
        ]
        assert edges_a == edges_b
        assert len(edges_a) == 6  # three cuts + three heals
        assert run_a.faults_injected["partition_drops"] == run_b.faults_injected[
            "partition_drops"
        ]


class TestFencing:
    """A live worker isolated past the heartbeat timeout gets fenced."""

    def test_total_isolation_fences_and_recovers(self):
        dataset, query = _scale_dataset(cols=32, n=1200)
        victim = 3
        partitions = [LinkPartition(victim, 0.002, 0.2)]
        partitions += [
            LinkPartition(victim, 0.002, 0.2, peer=w) for w in range(8) if w != victim
        ]
        plan = FaultPlan(seed=5, partitions=tuple(partitions))
        trace = SearchTrace()
        report = run_distributed(
            dataset, query, _config(8, faults=plan), trace=trace
        )
        assert report.fenced_workers == [victim]
        assert report.crashed_workers == []
        assert report.faults_injected["fencings"] == 1
        assert report.recovered_anchors > 0
        fences = [
            e
            for e in trace.events(EventKind.FAULT)
            if e.detail.get("fault") == "fence"
        ]
        assert len(fences) == 1 and fences[0].detail["worker"] == victim
        baseline = run_distributed(dataset, query, _config(8))
        assert _result_set(report) == _result_set(baseline)

    def test_short_partition_heals_without_fencing(self):
        """A cut that heals inside the timeout degrades, never fences."""
        dataset, query = _scale_dataset(cols=32, n=1200)
        plan = FaultPlan(
            seed=5, partitions=(LinkPartition(3, 0.002, 0.02),)
        )
        report = run_distributed(dataset, query, _config(8, faults=plan))
        assert report.fenced_workers == []
        assert report.outcome == "complete"
        baseline = run_distributed(dataset, query, _config(8))
        assert _result_set(report) == _result_set(baseline)


class TestHedging:
    """Speculative retransmits fire only under duress, never break results."""

    def test_fault_free_run_never_hedges(self):
        dataset, query = _scale_dataset(cols=32, n=1200)
        plain = run_distributed(dataset, query, _config(8))
        hedged = run_distributed(dataset, query, _config(8, hedge_delay_ms=5.0))
        assert hedged.hedges == 0
        assert _result_set(hedged) == _result_set(plain)
        assert hedged.total_time_s == plain.total_time_s

    def test_hedges_fire_under_chaos_and_preserve_equivalence(self):
        dataset, query = _scale_dataset(cols=32, n=1200)
        baseline = run_distributed(dataset, query, _config(16))
        plan = FaultPlan.chaos_scale(2, 16, crash_at_s=baseline.total_time_s / 3.0)
        report = run_distributed(
            dataset, query, _config(16, faults=plan, hedge_delay_ms=2.0)
        )
        assert report.hedges > 0
        assert report.outcome == "complete"
        assert _result_set(report) == _result_set(baseline)


class TestBatchedReassignment:
    """Policy-aware O(lost cells) adoption in the ownership router."""

    def _router(self, workers=4, cells=12):
        grid = Grid(Rect.from_bounds([(0.0, float(cells)), (0.0, 1.0)]), (1.0, 1.0))
        return OwnershipRouter(plan_partitions(grid, workers))

    def test_batch_merges_adjacent_deaths_into_one_run(self):
        router = self._router()
        batch = router.reassign_batch([1, 2])
        # Workers 1 and 2 own [3, 9); the merged run splits between the
        # surviving neighbors 0 and 3, each directive naming both sources.
        assert batch == [(0, (3, 6), (1, 2)), (3, (6, 9), (1, 2))]
        assert router.owned_range(0) == (0, 6)
        assert router.owned_range(3) == (6, 12)

    def test_balance_policy_prefers_smaller_neighbor(self):
        router = self._router()
        assert router.reassign_batch([0]) == [(1, (0, 3), (0,))]  # worker 1 -> 6 cells
        batch = router.reassign_batch([2], policy=SuccessorPolicy.BALANCE)
        # Neighbors of slab [6, 9) now own 6 (worker 1) and 3 (worker 3)
        # cells; BALANCE hands the whole run to the smaller side.
        assert batch == [(3, (6, 9), (2,))]
        assert router.owned_range(3) == (6, 12)

    def test_left_and_right_policies(self):
        left = self._router()
        assert left.reassign_batch([1], policy=SuccessorPolicy.LEFT) == [
            (0, (3, 6), (1,))
        ]
        right = self._router()
        assert right.reassign_batch([1], policy=SuccessorPolicy.RIGHT) == [
            (2, (3, 6), (1,))
        ]
        # The preferred side being dead falls back to the other side.
        edge = self._router()
        assert edge.reassign_batch([0], policy=SuccessorPolicy.LEFT) == [
            (1, (0, 3), (0,))
        ]

    def test_alive_veto_skips_doomed_successors(self):
        router = self._router()
        batch = router.reassign_batch([1], alive=lambda w: w != 0)
        # Worker 0 is crashed-but-undeclared: the whole run goes right.
        assert batch == [(2, (3, 6), (1,))]

    def test_unadoptable_runs_merge_into_lost_slabs(self):
        router = self._router(workers=2)
        assert router.reassign_batch([0, 1]) == []
        assert router.lost_slabs() == ((0, 12),)
        assert router.owner_of_cell(5) is None

    def test_batch_scales_with_lost_cells_not_workers(self):
        router = self._router(workers=64, cells=128)
        batch = router.reassign_batch([10, 11, 12])
        assert len(batch) <= 2  # one merged run, at most two adopters
        assert sum(hi - lo for _, (lo, hi), _ in batch) == 6  # 3 slabs x 2 cells


class TestFaultPlanComposition:
    """Crash sources merge; partitions are pure schedule lookups."""

    def test_chaos_scale_is_pure_function_of_seed_and_size(self):
        a = FaultPlan.chaos_scale(4, 32, crash_at_s=0.05)
        b = FaultPlan.chaos_scale(4, 32, crash_at_s=0.05)
        assert a == b
        c = FaultPlan.chaos_scale(5, 32, crash_at_s=0.05)
        assert a != c

    def test_chaos_scale_shape(self):
        plan = FaultPlan.chaos_scale(1, 64, crash_at_s=0.06)
        victims = plan.storms[0].victims
        assert len(victims) == 8  # 12.5% of 64
        assert victims == tuple(range(victims[0], victims[0] + 8))  # one rack
        assert plan.domains[0].members == victims
        assert plan.partitions  # coordinator link + adjacent peer link
        for part in plan.partitions:
            assert part.worker not in victims
            assert part.heal_s - part.start_s < 0.03  # heals inside the timeout
        assert plan.disk_slowdowns[0][0] not in victims

    def test_crash_times_merge_all_sources(self):
        plan = FaultPlan(
            crashes=(WorkerCrash(0, 0.05),),
            storms=(CrashStorm(victims=(1, 0), start_s=0.02, spacing_s=0.01),),
            domains=(FailureDomain(members=(2,), fail_at_s=0.04),),
        )
        times = plan.crash_times()
        assert times[1] == 0.02
        assert times[0] == 0.03  # storm entry beats the later explicit crash
        assert times[2] == 0.04
        assert plan.crash_time(3) is None

    def test_link_open_window_semantics(self):
        plan = FaultPlan(partitions=(LinkPartition(2, 0.01, 0.02, peer=5),))
        assert plan.link_open(2, 5, 0.005)
        assert not plan.link_open(2, 5, 0.01)  # closed-open interval
        assert not plan.link_open(5, 2, 0.015)  # symmetric
        assert plan.link_open(2, 5, 0.02)  # healed
        assert plan.link_open(2, COORDINATOR, 0.015)  # other links untouched

    def test_injector_rejects_out_of_range_ids(self):
        plan = FaultPlan(crashes=(WorkerCrash(7, 0.05),))
        with pytest.raises(ConfigError, match=r"\[7\]"):
            FaultInjector(plan, num_workers=4)
        FaultInjector(plan)  # no cluster size -> back-compat, no check
        FaultInjector(plan, num_workers=8)

    def test_invalid_plan_pieces_rejected(self):
        with pytest.raises(ConfigError):
            CrashStorm(victims=(), start_s=0.1)
        with pytest.raises(ConfigError):
            CrashStorm(victims=(1, 1), start_s=0.1)
        with pytest.raises(ConfigError):
            LinkPartition(2, 0.05, 0.05)  # must heal after it starts
        with pytest.raises(ConfigError):
            LinkPartition(2, 0.01, 0.02, peer=2)  # self-partition
        with pytest.raises(ConfigError):
            FailureDomain(members=())
        with pytest.raises(ConfigError):
            FaultPlan.chaos_scale(1, 1, crash_at_s=0.05)
        with pytest.raises(ConfigError):
            FaultPlan.chaos_scale(1, 16, crash_at_s=0.0)


class TestConfigValidation:
    """DistributedConfig rejects bad knobs at construction, clearly."""

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            ({"num_workers": 0}, "num_workers"),
            ({"num_workers": -2}, "num_workers"),
            ({"num_workers": 2.5}, "num_workers"),
            ({"tuples_per_block": 0}, "tuples_per_block"),
            ({"buffer_fraction": 0.0}, "buffer_fraction"),
            ({"buffer_fraction": 1.5}, "buffer_fraction"),
            ({"sample_fraction": 0.0}, "sample_fraction"),
            ({"sample_fraction": 2.0}, "sample_fraction"),
            ({"skew": -0.1}, "skew"),
            ({"max_steps": 0}, "max_steps"),
            ({"hedge_delay_ms": -1.0}, "hedge_delay_ms"),
        ],
    )
    def test_bad_knob_raises_config_error(self, kwargs, fragment):
        with pytest.raises(ConfigError, match=fragment):
            DistributedConfig(**kwargs)

    def test_string_coercions(self):
        config = DistributedConfig(successor_policy="balance", overlap="no_overlap")
        assert config.successor_policy is SuccessorPolicy.BALANCE
        with pytest.raises(ValueError):
            DistributedConfig(successor_policy="bogus")

    def test_valid_config_passes(self):
        config = DistributedConfig(
            num_workers=64, hedge_delay_ms=2.0, successor_policy=SuccessorPolicy.LEFT
        )
        assert config.num_workers == 64
