"""Unit and property tests for intervals and rectangles."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Interval, Rect


def finite_floats(lo=-1e6, hi=1e6):
    return st.floats(min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    lo = draw(finite_floats())
    length = draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
    return Interval(lo, lo + length)


@st.composite
def rects(draw, ndim=2):
    return Rect(tuple(draw(intervals()) for _ in range(ndim)))


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(2.0, 5.0)
        assert iv.length == 3.0
        assert iv.midpoint == 3.5
        assert not iv.is_empty

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="exceeds upper bound"):
            Interval(5.0, 2.0)

    def test_empty_interval(self):
        assert Interval(3.0, 3.0).is_empty

    def test_contains_half_open(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(0.0)
        assert iv.contains(0.999)
        assert not iv.contains(1.0)
        assert not iv.contains(-0.001)

    def test_contains_interval(self):
        outer = Interval(0.0, 10.0)
        assert outer.contains_interval(Interval(2.0, 5.0))
        assert outer.contains_interval(outer)
        assert not outer.contains_interval(Interval(5.0, 11.0))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 6))
        assert not Interval(0, 5).overlaps(Interval(5, 6))  # half-open: touching != overlap
        assert not Interval(0, 5).overlaps(Interval(7, 9))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 8)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 8)) is None

    def test_hull(self):
        assert Interval(0, 2).hull(Interval(5, 7)) == Interval(0, 7)

    def test_distance(self):
        assert Interval(0, 2).distance_to(Interval(5, 7)) == 3.0
        assert Interval(5, 7).distance_to(Interval(0, 2)) == 3.0
        assert Interval(0, 5).distance_to(Interval(3, 8)) == 0.0

    @given(intervals(), intervals())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    def test_intersection_within_both(self, a, b):
        shared = a.intersection(b)
        if shared is not None:
            assert a.contains_interval(shared)
            assert b.contains_interval(shared)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_interval(a)
        assert hull.contains_interval(b)

    @given(intervals(), intervals())
    def test_distance_zero_iff_overlap_or_empty(self, a, b):
        if a.overlaps(b):
            assert a.distance_to(b) == 0.0


class TestRect:
    def test_from_bounds(self):
        r = Rect.from_bounds([(0, 2), (1, 4)])
        assert r.ndim == 2
        assert r.lower == (0, 1)
        assert r.upper == (2, 4)
        assert r.volume == 6.0

    def test_requires_dimension(self):
        with pytest.raises(ValueError, match="at least one dimension"):
            Rect(())

    def test_contains_point(self):
        r = Rect.from_bounds([(0, 2), (0, 2)])
        assert r.contains_point((1.0, 1.9))
        assert not r.contains_point((2.0, 1.0))
        with pytest.raises(ValueError, match="dims"):
            r.contains_point((1.0,))

    def test_contains_rect_and_overlap(self):
        big = Rect.from_bounds([(0, 10), (0, 10)])
        small = Rect.from_bounds([(2, 3), (2, 3)])
        assert big.contains_rect(small)
        assert big.overlaps(small)
        assert not small.contains_rect(big)

    def test_intersection(self):
        a = Rect.from_bounds([(0, 5), (0, 5)])
        b = Rect.from_bounds([(3, 8), (4, 9)])
        assert a.intersection(b) == Rect.from_bounds([(3, 5), (4, 5)])
        c = Rect.from_bounds([(6, 8), (0, 5)])
        assert a.intersection(c) is None

    def test_min_distance(self):
        a = Rect.from_bounds([(0, 1), (0, 1)])
        b = Rect.from_bounds([(4, 5), (4, 5)])
        assert a.min_distance(b) == pytest.approx(math.sqrt(18))
        assert a.min_distance(a) == 0.0

    def test_diameter(self):
        r = Rect.from_bounds([(0, 3), (0, 4)])
        assert r.diameter == 5.0

    def test_dimension_mismatch_raises(self):
        a = Rect.from_bounds([(0, 1)])
        b = Rect.from_bounds([(0, 1), (0, 1)])
        with pytest.raises(ValueError, match="dimension mismatch"):
            a.overlaps(b)

    @given(rects(), rects())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_rect(a)
        assert hull.contains_rect(b)

    @given(rects(), rects())
    def test_min_distance_symmetric(self, a, b):
        assert a.min_distance(b) == pytest.approx(b.min_distance(a))

    @given(rects())
    def test_volume_nonnegative(self, r):
        assert r.volume >= 0.0
