"""Tests for the SWEngine facade and execution reports."""

from __future__ import annotations

import pytest

from repro.core import SearchConfig, SWEngine
from repro.workloads import make_database


class TestEngine:
    def test_report_fields(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        report = engine.execute(tiny_query)
        assert report.run.num_results == len(report.results)
        assert report.disk_stats["blocks_read"] > 0
        assert report.buffer_misses > 0
        assert report.disk_stats["total_time_s"] > 0

    def test_disk_stats_are_deltas(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        first = engine.execute(tiny_query)
        second = engine.execute(tiny_query)
        # The second run hits the warm cell cache of a *new* search but a
        # warm buffer pool: its delta must not include the first run's I/O.
        assert second.disk_stats["blocks_read"] <= first.disk_stats["blocks_read"]

    def test_mean_read_recomputed_from_delta(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        report = engine.execute(tiny_query)
        expected = report.disk_stats["total_time_s"] * 1e3 / report.disk_stats["blocks_read"]
        assert report.disk_stats["mean_read_ms"] == pytest.approx(expected)

    def test_sample_cached_per_grid(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        sample_a = engine.sample_for(tiny_query)
        sample_b = engine.sample_for(tiny_query)
        assert sample_a is sample_b

    def test_execute_iter_streams_online(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        stream = engine.execute_iter(tiny_query, SearchConfig(alpha=0.5))
        first = next(stream)
        assert first.time >= 0
        rest = list(stream)
        assert len(rest) >= 1

    def test_invalid_sampler(self, tiny_db, tiny_dataset):
        with pytest.raises(ValueError, match="sampler"):
            SWEngine(tiny_db, tiny_dataset.name, sampler="systematic")

    def test_uniform_sampler_supported(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.3, sampler="uniform")
        report = engine.execute(tiny_query)
        assert report.run.num_results > 0

    def test_prepare_without_running(self, tiny_dataset, tiny_query, tiny_db):
        engine = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3)
        search = engine.prepare(tiny_query, SearchConfig(alpha=2.0))
        assert search.config.alpha == 2.0
        assert search.stats.explored == 0
