"""Tests for SWQuery validation, the cost model, and bench reporting."""

from __future__ import annotations

import pytest

from repro.bench import format_seconds, format_table, online_series
from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    ResultWindow,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    Window,
    col,
)
from repro.core.search import SearchRun
from repro.costs import CostModel, DEFAULT_COST_MODEL


class TestSWQuery:
    def _query(self, **kwargs):
        defaults = dict(
            dimensions=("x", "y"),
            area=[(0.0, 10.0), (0.0, 10.0)],
            steps=(1.0, 1.0),
            conditions=[
                ContentCondition(
                    ContentObjective.of("avg", col("v")), ComparisonOp.GT, 5.0
                )
            ],
        )
        defaults.update(kwargs)
        return SWQuery.build(**defaults)

    def test_build(self):
        query = self._query()
        assert query.ndim == 2
        assert query.grid.shape == (10, 10)
        assert query.dim_index("y") == 1

    def test_unknown_dimension_name(self):
        query = self._query()
        with pytest.raises(ValueError, match="unknown dimension"):
            query.dim_index("z")

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._query(dimensions=("x", "x"))

    def test_dimension_grid_mismatch(self):
        with pytest.raises(ValueError, match="dimensions"):
            self._query(dimensions=("x",))

    def test_attribute_columns(self):
        query = self._query()
        assert query.attribute_columns() == {"v"}

    def test_shape_only_query_has_no_attributes(self):
        query = self._query(
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4)
            ]
        )
        assert query.attribute_columns() == frozenset()


class TestCostModel:
    def test_defaults_sane(self):
        cm = DEFAULT_COST_MODEL
        assert cm.seek_s() > cm.transfer_s()
        assert cm.sql_cpu_per_window_us > cm.sw_cpu_per_window_us

    def test_conversions(self):
        cm = CostModel(seek_ms=2.0, transfer_ms=0.5, tuple_cpu_us=10.0)
        assert cm.seek_s() == 0.002
        assert cm.transfer_s(4) == 0.002
        assert cm.tuples_s(100) == pytest.approx(0.001)

    def test_window_cpu(self):
        cm = CostModel(sw_cpu_per_window_us=5.0, sql_cpu_per_window_us=50.0)
        assert cm.sw_window_s(1000) == pytest.approx(0.005)
        assert cm.sql_window_s(1000) == pytest.approx(0.05)

    def test_network(self):
        cm = CostModel(network_latency_ms=1.0, network_per_cell_us=100.0)
        assert cm.network_s(0) == pytest.approx(0.001)
        assert cm.network_s(10) == pytest.approx(0.002)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CostModel(seek_ms=-1.0)

    def test_with_overrides(self):
        cm = DEFAULT_COST_MODEL.with_overrides(seek_ms=9.0)
        assert cm.seek_ms == 9.0
        assert cm.transfer_ms == DEFAULT_COST_MODEL.transfer_ms


class TestBenchReporting:
    def test_format_seconds(self):
        assert format_seconds(1234.5) == "1,234.50"
        assert format_seconds(None) == "-"
        assert format_seconds(float("nan")) == "-"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a"], [["1", "2"]])

    def _run_with_times(self, times):
        run = SearchRun()
        for i, t in enumerate(times):
            window = Window((i, 0), (i + 1, 1))
            run.results.append(
                ResultWindow(window=window, bounds=None, objective_values={}, time=t)  # type: ignore[arg-type]
            )
        return run

    def test_online_series(self):
        run = self._run_with_times([1.0, 2.0, 3.0, 4.0])
        series = online_series(run, fractions=(0.25, 0.5, 1.0))
        assert series == [(0.25, 1.0), (0.5, 2.0), (1.0, 4.0)]

    def test_online_series_empty_run(self):
        series = online_series(SearchRun(), fractions=(0.5, 1.0))
        assert series == [(0.5, None), (1.0, None)]

    def test_time_to_fraction_validation(self):
        run = self._run_with_times([1.0])
        with pytest.raises(ValueError, match="fraction"):
            run.time_to_fraction(0.0)
        with pytest.raises(ValueError, match="fraction"):
            run.time_to_fraction(1.5)

    def test_time_to_fraction_rounds_up(self):
        run = self._run_with_times([1.0, 2.0, 3.0])
        assert run.time_to_fraction(0.4) == 2.0  # ceil(1.2) = 2nd result
