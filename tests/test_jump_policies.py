"""Unit tests for the jump-policy mechanics (Section 4.4 details)."""

from __future__ import annotations

import pytest

from repro.core import Grid, Rect, SpillableQueue, Window
from repro.core.clusters import ClusterTracker
from repro.core.diversify import DistJumpPolicy, JumpPolicy, UtilityJumpPolicy


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


def priority_of(window: Window) -> tuple[float, float]:
    # Deterministic fake utility: prefer small anchors.
    return (1.0 - (window.lo[0] + window.lo[1]) / 100.0, 0.0)


class TestBasePolicy:
    def test_no_jump_no_benefit_change(self, grid):
        policy = JumpPolicy(ClusterTracker(grid))
        w = Window((0, 0), (1, 1))
        assert policy.modified_benefit(w, 0.7) == 0.7
        queue = SpillableQueue()
        chosen, jumped = policy.select(w, priority_of, queue, 0)
        assert chosen == w and not jumped


class TestUtilityJumpPolicy:
    def _setup(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (2, 2)))  # one known cluster
        policy = UtilityJumpPolicy(tracker)
        queue = SpillableQueue()
        return tracker, policy, queue

    def test_modified_benefit_includes_distance(self, grid):
        tracker, policy, _ = self._setup(grid)
        near = Window((1, 1), (2, 2))  # inside the cluster: dist 0
        far = Window((9, 9), (10, 10))
        assert policy.modified_benefit(near, 1.0) == pytest.approx(0.5)
        assert policy.modified_benefit(far, 1.0) > 0.5

    def test_jump_to_distant_candidate(self, grid):
        tracker, policy, queue = self._setup(grid)
        inside = Window((0, 0), (1, 1))  # overlaps the cluster
        distant = Window((8, 8), (9, 9))
        queue.push((0.99, 0.0), distant, 0)

        # utility function that rates the distant window higher
        def utility(w):
            return (0.9, 0.0) if w == distant else (0.1, 0.0)

        chosen, jumped = policy.select(inside, utility, queue, 0)
        assert jumped and chosen == distant
        # The bypassed window went back into the queue.
        assert len(queue) == 1

    def test_no_jump_when_candidate_weaker(self, grid):
        tracker, policy, queue = self._setup(grid)
        inside = Window((0, 0), (1, 1))
        distant = Window((8, 8), (9, 9))
        queue.push((0.2, 0.0), distant, 0)

        def utility(w):
            return (0.1, 0.0) if w == distant else (0.9, 0.0)

        chosen, jumped = policy.select(inside, utility, queue, 0)
        assert not jumped and chosen == inside
        assert len(queue) == 1  # candidate restored

    def test_no_jump_outside_clusters(self, grid):
        tracker, policy, queue = self._setup(grid)
        outside = Window((5, 5), (6, 6))
        chosen, jumped = policy.select(outside, priority_of, queue, 0)
        assert not jumped and chosen == outside

    def test_disabled_after_false_positive_jump(self, grid):
        tracker, policy, queue = self._setup(grid)
        inside = Window((0, 0), (1, 1))
        distant = Window((8, 8), (9, 9))
        policy.on_read(distant, positive=False, jumped=True)
        queue.push((0.99, 0.0), distant, 0)

        def utility(w):
            return (0.9, 0.0) if w == distant else (0.1, 0.0)

        # One suppressed step...
        chosen, jumped = policy.select(inside, utility, queue, 0)
        assert not jumped
        # ...then jumping resumes.
        chosen, jumped = policy.select(inside, utility, queue, 0)
        assert jumped

    def test_held_candidates_restored(self, grid):
        tracker, policy, queue = self._setup(grid)
        inside = Window((0, 0), (1, 1))
        # Fill the queue with cluster-adjacent (dist 0) candidates only.
        for i in range(5):
            queue.push((0.9 - i * 0.1, 0.0), Window((i, 0), (i + 2, 2)), 0)
        before = len(queue)
        chosen, jumped = policy.select(inside, priority_of, queue, 0)
        assert not jumped
        assert len(queue) == before

    def test_scan_limit_validation(self, grid):
        with pytest.raises(ValueError, match="scan_limit"):
            UtilityJumpPolicy(ClusterTracker(grid), scan_limit=0)


class TestDistJumpPolicy:
    def test_chooses_furthest_of_k(self, grid):
        tracker = ClusterTracker(grid)
        tracker.add(Window((0, 0), (2, 2)))
        policy = DistJumpPolicy(tracker, k=3)
        queue = SpillableQueue()
        near = Window((2, 2), (3, 3))
        far = Window((9, 9), (10, 10))
        queue.push((0.8, 0.0), near, 0)
        queue.push((0.7, 0.0), far, 0)
        current = Window((1, 1), (2, 2))  # dist 0
        chosen, jumped = policy.select(current, priority_of, queue, 0)
        assert chosen == far and jumped
        assert len(queue) == 2  # the two unchosen candidates restored

    def test_no_clusters_no_jump(self, grid):
        policy = DistJumpPolicy(ClusterTracker(grid), k=3)
        queue = SpillableQueue()
        queue.push((0.9, 0.0), Window((5, 5), (6, 6)), 0)
        current = Window((0, 0), (1, 1))
        chosen, jumped = policy.select(current, priority_of, queue, 0)
        assert chosen == current and not jumped
        assert len(queue) == 1

    def test_k_validation(self, grid):
        with pytest.raises(ValueError, match="candidate count"):
            DistJumpPolicy(ClusterTracker(grid), k=0)
