"""Storage-corruption suite: checksums, scrub/repair, degraded queries.

The acceptance contract (DESIGN.md Section 11): under a seeded
:class:`StorageFaultPlan`, every injected corruption is detected; when
every fault is repairable the query's result set equals the fault-free
run's; when repair is impossible the execution *degrades* — quarantined
blocks and affected cells are reported — but never escapes as an
unhandled exception.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.core import SearchConfig, SWEngine
from repro.core.trace import EventKind, SearchTrace
from repro.errors import ConfigError
from repro.obs import InvariantAuditor, MetricsRegistry
from repro.storage.integrity import (
    CORRUPTION_KINDS,
    Scrubber,
    StorageFaultPlan,
)
from repro.workloads import make_database, synthetic_dataset, synthetic_query

pytestmark = pytest.mark.storage_chaos

# The CI chaos-storage matrix sets STORAGE_CHAOS_SEED per job leg; each
# leg then covers one extra seed far from the defaults.
STORAGE_SEEDS = [11, 12, 13]
if os.environ.get("STORAGE_CHAOS_SEED"):
    STORAGE_SEEDS.append(211 * int(os.environ["STORAGE_CHAOS_SEED"]) + 7)


@pytest.fixture(scope="module")
def workload():
    dataset = synthetic_dataset("high", scale=0.1, seed=5)
    return dataset, synthetic_query(dataset)


def _execute(workload, plan=None, trace=None, metrics=None, **config_kw):
    """One engine run over a fresh database, optionally under a fault plan."""
    dataset, query = workload
    database = make_database(dataset, "cluster")
    if metrics is not None:
        database.attach_metrics(metrics)
    if plan is not None:
        database.attach_integrity(plan)
        if trace is not None:
            database.attach_trace(trace)
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    report = engine.execute(
        query, SearchConfig(alpha=1.0, **config_kw), trace=trace
    )
    return report, database


def _result_set(report):
    """Windows + objective values; times are excluded because repair I/O
    legitimately shifts the simulated clock."""
    return [
        (r.window, tuple(sorted(r.objective_values.items())))
        for r in report.results
    ]


@pytest.fixture(scope="module")
def fault_free(workload):
    report, _ = _execute(workload)
    return _result_set(report)


class TestDetection:
    @pytest.mark.parametrize("seed", STORAGE_SEEDS)
    def test_every_injected_corruption_is_detected(self, workload, seed):
        dataset, _ = workload
        report, database = _execute(
            workload, plan=StorageFaultPlan.chaos(seed, corruption_rate=0.01)
        )
        integ = database.integrity(dataset.name)
        assert integ.injector.total_injected > 0, "plan never fired"
        # 100% detection: every injection is caught by the checksum
        # (latent corruption re-hit on later reads is re-detected too).
        assert integ.corruptions_detected >= integ.injector.total_injected
        # ... and every detection was resolved: repaired or quarantined.
        assert report.results  # the query still produced output

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_targeted_corruption_detected_on_first_read(self, workload, kind):
        dataset, _ = workload
        plan = StorageFaultPlan(
            seed=0,
            corrupt_blocks=((3, kind),),
            reread_success_prob=1.0,
            replica_failure_prob=0.0,
        )
        _, database = _execute(workload, plan=plan)
        integ = database.integrity(dataset.name)
        assert integ.corruptions_detected >= 1
        assert integ.injector.injected[kind] == 1

    @pytest.mark.parametrize("seed", STORAGE_SEEDS)
    def test_chaos_is_deterministic_per_seed(self, workload, seed):
        dataset, _ = workload
        runs = []
        for _ in range(2):
            report, database = _execute(
                workload, plan=StorageFaultPlan.chaos(seed, corruption_rate=0.01)
            )
            integ = database.integrity(dataset.name)
            runs.append(
                (
                    _result_set(report),
                    integ.corruptions_detected,
                    dict(integ.injector.injected),
                    sorted(integ.quarantined),
                )
            )
        assert runs[0] == runs[1]


class TestRepair:
    @pytest.mark.parametrize("seed", STORAGE_SEEDS)
    def test_transient_faults_heal_to_fault_free_results(
        self, workload, fault_free, seed
    ):
        """Bit-rot with guaranteed re-read success: every fault heals."""
        dataset, _ = workload
        plan = StorageFaultPlan(
            seed=seed, bitrot_prob=0.05, reread_success_prob=1.0, max_rereads=1
        )
        report, database = _execute(workload, plan=plan)
        integ = database.integrity(dataset.name)
        assert integ.injector.total_injected > 0
        assert integ.blocks_repaired == integ.corruptions_detected
        assert not integ.quarantined
        assert report.degradation is None and not report.degraded
        assert _result_set(report) == fault_free

    @pytest.mark.parametrize("seed", STORAGE_SEEDS)
    def test_media_faults_heal_via_replica(self, workload, fault_free, seed):
        """Torn/lost writes with a reliable replica: every fault heals."""
        dataset, _ = workload
        plan = StorageFaultPlan(
            seed=seed,
            torn_write_prob=0.02,
            lost_write_prob=0.02,
            replicas=1,
            replica_failure_prob=0.0,
        )
        report, database = _execute(workload, plan=plan)
        integ = database.integrity(dataset.name)
        assert integ.injector.total_injected > 0
        assert integ.replica_reads > 0
        assert not integ.quarantined
        assert report.degradation is None
        assert _result_set(report) == fault_free

    @pytest.mark.parametrize("seed", STORAGE_SEEDS)
    def test_unrepairable_faults_degrade_without_raising(self, workload, seed):
        """No replicas: persistent faults quarantine; the query survives."""
        dataset, _ = workload
        plan = StorageFaultPlan(seed=seed, lost_write_prob=0.03, replicas=0)
        report, database = _execute(workload, plan=plan)
        integ = database.integrity(dataset.name)
        assert integ.quarantined, "plan never produced unrepairable damage"
        assert report.degraded
        deg = report.degradation
        assert deg.table == dataset.name
        assert set(deg.lost_blocks) == integ.quarantined
        assert deg.describe()  # human-readable summary exists

    @pytest.mark.parametrize("seed", STORAGE_SEEDS)
    def test_invariants_hold_under_chaos(self, workload, seed):
        registry = MetricsRegistry()
        _execute(
            workload,
            plan=StorageFaultPlan.chaos(seed, corruption_rate=0.01),
            metrics=registry,
        )
        outcome = InvariantAuditor(registry).report()
        assert outcome["ok"], outcome["violations"]


class TestScrub:
    def test_full_pass_finds_latent_corruption(self, workload):
        dataset, _ = workload
        database = make_database(dataset, "cluster")
        plan = StorageFaultPlan(
            seed=0, corrupt_blocks=((5, "lost"), (9, "torn")), replicas=0
        )
        database.attach_integrity(plan)
        scrubber = Scrubber(database, dataset.name, blocks_per_step=32)
        totals = scrubber.run()
        integ = database.integrity(dataset.name)
        assert totals["passes"] == 1
        assert totals["corruptions"] >= 2
        assert integ.quarantined == {5, 9}

    def test_scrub_advances_the_simulated_clock(self, workload):
        dataset, _ = workload
        database = make_database(dataset, "cluster")
        database.attach_integrity(StorageFaultPlan(seed=0))
        before = database.clock.now
        Scrubber(database, dataset.name, blocks_per_step=32).run()
        assert database.clock.now > before

    def test_background_scrub_between_search_steps(self, workload):
        dataset, _ = workload
        registry = MetricsRegistry()
        trace = SearchTrace()
        report, database = _execute(
            workload,
            plan=StorageFaultPlan.chaos(13, corruption_rate=0.005),
            trace=trace,
            metrics=registry,
            scrub_blocks_per_step=4,
        )
        integ = database.integrity(dataset.name)
        assert integ.scrubbed_blocks > 0
        assert trace.events(EventKind.SCRUB)
        assert report.results
        outcome = InvariantAuditor(registry).report()
        assert outcome["ok"], outcome["violations"]

    def test_scrubber_requires_integrity_layer(self, workload):
        dataset, _ = workload
        database = make_database(dataset, "cluster")
        with pytest.raises(ConfigError, match="no integrity layer"):
            Scrubber(database, dataset.name)

    def test_corruption_events_reach_the_trace(self, workload):
        trace = SearchTrace()
        _execute(
            workload,
            plan=StorageFaultPlan.chaos(11, corruption_rate=0.01),
            trace=trace,
        )
        assert trace.events(EventKind.CORRUPT)
        assert trace.events(EventKind.REPAIR)


class TestScrubCli:
    def test_clean_device_scrubs_ok(self):
        lines: list[str] = []
        code = main(
            ["scrub", "--workload", "synth-high", "--scale", "0.1"], out=lines.append
        )
        assert code == 0
        text = "\n".join(lines)
        assert "0 corruption(s) detected" in text
        assert "all hold" in text

    def test_chaos_scrub_reports_and_audits(self):
        lines: list[str] = []
        code = main(
            [
                "scrub",
                "--workload",
                "synth-high",
                "--scale",
                "0.1",
                "--chaos-seed",
                "7",
            ],
            out=lines.append,
        )
        assert code == 0
        text = "\n".join(lines)
        assert "chaos plan: seed=7" in text
        assert "corruption(s) detected" in text
        assert "all hold" in text
