"""Unit tests for objectives, conditions, and derived pruning bounds."""

from __future__ import annotations

import pytest

from repro.core import (
    ComparisonOp,
    ConditionSet,
    ContentCondition,
    ContentObjective,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    Window,
    col,
)


class TestComparisonOp:
    @pytest.mark.parametrize(
        "op, left, right, expected",
        [
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 2, 2, False),
            (ComparisonOp.GE, 2, 2, True),
            (ComparisonOp.EQ, 3, 3, True),
            (ComparisonOp.NE, 3, 3, False),
        ],
    )
    def test_apply(self, op, left, right, expected):
        assert op.apply(left, right) is expected

    def test_nan_never_satisfies(self):
        for op in ComparisonOp:
            assert not op.apply(float("nan"), 1.0)

    def test_parse_aliases(self):
        assert ComparisonOp.parse("==") is ComparisonOp.EQ
        assert ComparisonOp.parse("<>") is ComparisonOp.NE
        assert ComparisonOp.parse(">=") is ComparisonOp.GE

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            ComparisonOp.parse("~")


class TestShapeObjective:
    def test_length(self):
        obj = ShapeObjective(ShapeKind.LENGTH, 1)
        assert obj.value(Window((0, 0), (2, 5))) == 5.0

    def test_cardinality(self):
        obj = ShapeObjective(ShapeKind.CARDINALITY)
        assert obj.value(Window((0, 0), (2, 5))) == 10.0

    def test_length_requires_dim(self):
        with pytest.raises(ValueError, match="requires a dimension"):
            ShapeObjective(ShapeKind.LENGTH)

    def test_card_takes_no_dim(self):
        with pytest.raises(ValueError, match="does not take"):
            ShapeObjective(ShapeKind.CARDINALITY, 0)


class TestContentObjective:
    def test_of(self):
        obj = ContentObjective.of("avg", col("v"))
        assert obj.aggregate.name == "avg"
        assert obj.columns() == {"v"}

    def test_count_without_expr(self):
        obj = ContentObjective.of("count")
        assert obj.key == "*"

    def test_value_aggregate_requires_expr(self):
        with pytest.raises(ValueError, match="requires an attribute expression"):
            ContentObjective.of("sum")

    def test_key_is_expression_repr(self):
        assert ContentObjective.of("avg", col("v") * 2).key == "(v * 2)"


class TestConditions:
    def test_shape_condition_evaluate(self):
        cond = ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.EQ, 3)
        assert cond.evaluate(Window((0, 0), (3, 1)))
        assert not cond.evaluate(Window((0, 0), (2, 1)))

    def test_content_condition_evaluate_value(self):
        cond = ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 10)
        assert cond.evaluate_value(11.0)
        assert not cond.evaluate_value(9.0)
        assert not cond.evaluate_value(float("nan"))

    def test_anti_monotone_detection(self):
        sum_lt = ContentCondition(ContentObjective.of("sum", col("v")), ComparisonOp.LT, 5)
        sum_gt = ContentCondition(ContentObjective.of("sum", col("v")), ComparisonOp.GT, 5)
        avg_lt = ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.LT, 5)
        count_le = ContentCondition(ContentObjective.of("count"), ComparisonOp.LE, 5)
        assert sum_lt.anti_monotone
        assert count_le.anti_monotone
        assert not sum_gt.anti_monotone
        assert not avg_lt.anti_monotone


def _cs(*conditions, ndim=2):
    return ConditionSet.of(conditions, ndim)


class TestConditionSetBounds:
    def test_min_lengths_from_ge(self):
        cs = _cs(ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, 3))
        assert cs.min_lengths((10, 10)) == (3, 1)

    def test_min_lengths_from_gt(self):
        cs = _cs(ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.GT, 2))
        assert cs.min_lengths((10, 10)) == (1, 3)

    def test_min_lengths_from_eq(self):
        cs = _cs(ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.EQ, 4))
        assert cs.min_lengths((10, 10)) == (4, 1)

    def test_min_lengths_clipped_to_grid(self):
        cs = _cs(ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, 50))
        assert cs.min_lengths((10, 10)) == (10, 1)

    def test_max_lengths_from_lt(self):
        cs = _cs(ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.LT, 4))
        assert cs.max_lengths((10, 10)) == (3, 10)

    def test_max_lengths_from_card(self):
        cs = _cs(ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, 10))
        assert cs.max_lengths((20, 20)) == (9, 9)

    def test_max_cardinality(self):
        cs = _cs(
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, 10),
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 7),
        )
        assert cs.max_cardinality((20, 20)) == 7

    def test_max_cardinality_from_lengths(self):
        cs = _cs(
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.EQ, 3),
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.EQ, 2),
        )
        assert cs.max_cardinality((20, 20)) == 6

    def test_max_cardinality_unconstrained(self):
        cs = _cs()
        assert cs.max_cardinality((20, 20)) is None

    def test_shape_satisfied(self):
        cs = _cs(
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.EQ, 3),
            ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 1), ComparisonOp.EQ, 2),
        )
        assert cs.shape_satisfied(Window((0, 0), (3, 2)))
        assert not cs.shape_satisfied(Window((0, 0), (3, 3)))

    def test_dim_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="references dimension"):
            _cs(ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 5), ComparisonOp.EQ, 1))

    def test_content_objectives_dedup(self):
        obj = ContentObjective.of("avg", col("v"))
        cs = _cs(
            ContentCondition(obj, ComparisonOp.GT, 1),
            ContentCondition(obj, ComparisonOp.LT, 9),
        )
        assert len(cs.content_objectives()) == 1

    def test_partition_by_kind(self):
        cs = _cs(
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LT, 10),
            ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 1),
        )
        assert len(cs.shape_conditions) == 1
        assert len(cs.content_conditions) == 1
        assert len(cs) == 2
