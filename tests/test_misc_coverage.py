"""Miscellaneous coverage: CLI rendering flags, placement variants, 1-D paths."""

from __future__ import annotations

import numpy as np

from repro.cli import main
from repro.core import Grid, Rect, Window, prefetch_extend
from repro.distributed import DistributedConfig, run_distributed
from repro.storage.placement import cluster_order
from repro.workloads import make_database, stock_dataset, stock_query


def run_cli(*argv: str) -> tuple[int, list[str]]:
    lines: list[str] = []
    code = main(list(argv), out=lines.append)
    return code, lines


class TestCliRendering:
    def test_heatmap_and_timeline_flags(self):
        code, lines = run_cli(
            "run", "--workload", "synth-high", "--scale", "0.2",
            "--sample-fraction", "0.3", "--heatmap", "--timeline",
        )
        assert code == 0
        joined = "\n".join(lines)
        assert "result density" in joined
        assert "results over" in joined

    def test_stocks_workload_via_cli_sql(self):
        code, lines = run_cli(
            "sql", "--workload", "stocks", "--sample-fraction", "0.3",
            "SELECT LB(time), UB(time), AVG(price) FROM stocks "
            "GRID BY time BETWEEN 0 AND 5840 STEP 365 "
            "HAVING AVG(price) > 50 AND LEN(time) <= 3",
        )
        assert code == 0
        assert any("rows" in line for line in lines)


class TestPlacementVariants:
    def test_shuffled_cluster_order_is_permutation(self):
        rng = np.random.default_rng(3)
        coords = rng.uniform(0, 10, (200, 2))
        grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
        perm = cluster_order(coords, grid, shuffle_groups=True, seed=5)
        assert sorted(perm) == list(range(200))

    def test_shuffled_groups_differ_from_rowmajor(self):
        rng = np.random.default_rng(4)
        coords = rng.uniform(0, 10, (300, 2))
        grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
        plain = cluster_order(coords, grid, shuffle_groups=False)
        shuffled = cluster_order(coords, grid, shuffle_groups=True, seed=5)
        assert not np.array_equal(plain, shuffled)

    def test_distributed_with_axis_placement(self):
        dataset = stock_dataset(years=8, bull_years=(2, 5), seed=6)
        query = stock_query(dataset)
        report = run_distributed(
            dataset,
            query,
            DistributedConfig(num_workers=2, placement="axis", sample_fraction=0.3),
        )
        db = make_database(dataset, "cluster")
        from repro.core import SWEngine

        reference = SWEngine(db, dataset.name, sample_fraction=0.3).execute(query).run
        assert {r.window for r in report.results} == {
            r.window for r in reference.results
        }


class TestOneDimensionalPaths:
    def test_prefetch_extend_1d(self):
        grid = Grid(Rect.from_bounds([(0.0, 20.0)]), (1.0,))
        w = Window((10,), (11,))
        extended = prefetch_extend(w, 3.0, grid, cost_fn=lambda x: float(x.cardinality))
        assert extended.contains_window(w)
        assert extended.ndim == 1
        assert extended.cardinality > 1

    def test_1d_distributed_partitioning(self):
        dataset = stock_dataset(years=12, bull_years=(3, 8), seed=7)
        query = stock_query(dataset)
        for overlap in ("no_overlap", "full_overlap"):
            report = run_distributed(
                dataset,
                query,
                DistributedConfig(num_workers=3, overlap=overlap, sample_fraction=0.3),
            )
            assert report.num_results > 0
