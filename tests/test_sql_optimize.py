"""Tests for the MAXIMIZE/MINIMIZE SQL extension (Section 8)."""

from __future__ import annotations

import pytest

from repro.sql import (
    CompileError,
    compile_optimize_query,
    compile_sql,
    execute_optimize,
    execute_sql,
    parse_query,
)
from repro.storage import TableSchema
from repro.workloads import make_database, synthetic_dataset


@pytest.fixture()
def schema():
    return TableSchema(["x", "y", "value"], ["x", "y"])


BASE = (
    "SELECT LB(x), UB(x), AVG(value) FROM t "
    "GRID BY x BETWEEN 0 AND 10 STEP 1, y BETWEEN 0 AND 10 STEP 1 "
)


class TestParsing:
    def test_maximize_parsed(self):
        parsed = parse_query(BASE + "HAVING CARD() <= 4 MAXIMIZE AVG(value)")
        assert parsed.optimize is not None
        assert parsed.optimize.maximize
        assert parsed.optimize.call.name == "avg"

    def test_minimize_parsed(self):
        parsed = parse_query(BASE + "MINIMIZE SUM(value)")
        assert not parsed.optimize.maximize

    def test_optimize_without_having(self):
        parsed = parse_query(BASE + "MAXIMIZE AVG(value)")
        assert parsed.having == ()
        assert parsed.optimize is not None


class TestCompilation:
    def test_compiles_shape_conditions(self, schema):
        parsed = parse_query(BASE + "HAVING CARD() <= 4 MAXIMIZE AVG(value)")
        compiled = compile_optimize_query(parsed, schema)
        assert compiled.maximize
        assert compiled.query.conditions.max_cardinality((10, 10)) == 4
        assert compiled.objective.aggregate.name == "avg"

    def test_content_conditions_rejected(self, schema):
        parsed = parse_query(BASE + "HAVING AVG(value) > 5 MAXIMIZE AVG(value)")
        with pytest.raises(CompileError, match="shape conditions only"):
            compile_optimize_query(parsed, schema)

    def test_cannot_optimize_shape_function(self, schema):
        parsed = parse_query(BASE + "MAXIMIZE CARD()")
        with pytest.raises(CompileError, match="cannot optimize"):
            compile_optimize_query(parsed, schema)

    def test_unknown_column_rejected(self, schema):
        parsed = parse_query(BASE + "MAXIMIZE AVG(nope)")
        with pytest.raises(CompileError, match="unknown column"):
            compile_optimize_query(parsed, schema)

    def test_plain_compile_rejects_optimize(self, schema):
        with pytest.raises(CompileError, match="execute_optimize"):
            compile_sql(BASE + "MAXIMIZE AVG(value)", schema)

    def test_not_an_optimize_statement(self, schema):
        parsed = parse_query(BASE + "HAVING CARD() <= 4 AND AVG(value) > 5")
        with pytest.raises(CompileError, match="no MAXIMIZE"):
            compile_optimize_query(parsed, schema)


class TestExecution:
    @pytest.fixture(scope="class")
    def db(self):
        dataset = synthetic_dataset("high", scale=0.2, seed=61)
        return make_database(dataset, "cluster"), dataset

    def _sql(self, dataset, direction):
        grid = dataset.grid
        return (
            f"SELECT CARD() FROM {dataset.name} "
            f"GRID BY x BETWEEN 0 AND {grid.area[0].hi} STEP {grid.steps[0]}, "
            f"y BETWEEN 0 AND {grid.area[1].hi} STEP {grid.steps[1]} "
            f"HAVING CARD() <= 4 {direction} AVG(value)"
        )

    def test_maximize_picks_background(self, db):
        database, dataset = db
        result = execute_optimize(database, self._sql(dataset, "MAXIMIZE"), 0.3)
        # Background value ~ N(50): the optimum must exceed every cluster.
        assert result.best.value > 45.0

    def test_minimize_picks_target_cluster(self, db):
        database, dataset = db
        result = execute_optimize(database, self._sql(dataset, "MINIMIZE"), 0.3)
        # Target clusters average ~25 — the minimum lives there.
        assert result.best.value < 27.0

    def test_execute_sql_rejects_optimize(self, db):
        database, dataset = db
        with pytest.raises(CompileError, match="execute_optimize"):
            execute_sql(database, self._sql(dataset, "MAXIMIZE"))
