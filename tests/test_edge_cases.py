"""Edge cases and failure-mode tests across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    SearchConfig,
    SWEngine,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.dbms import run_sql_baseline
from repro.distributed import DistributedConfig, run_distributed
from repro.storage import Database, HeapTable, TableSchema
from repro.workloads import make_database


def query_over(grid_hi, conditions, steps=(1.0, 1.0)):
    return SWQuery.build(
        dimensions=("x", "y"),
        area=[(0.0, grid_hi), (0.0, grid_hi)],
        steps=steps,
        conditions=conditions,
    )


@pytest.fixture()
def sparse_db():
    """A table with data only in one corner of a larger search area."""
    rng = np.random.default_rng(55)
    n = 200
    x = rng.uniform(0, 3, n)
    y = rng.uniform(0, 3, n)
    v = rng.normal(10, 1, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    db = Database()
    db.register(HeapTable("sparse", schema, {"x": x, "y": y, "v": v}, tuples_per_block=8))
    return db


class TestNoResults:
    def test_impossible_content_condition(self, sparse_db):
        query = query_over(
            10.0,
            [
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4),
                ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 1e9),
            ],
        )
        run = SWEngine(sparse_db, "sparse", sample_fraction=0.5).execute(query).run
        assert run.num_results == 0
        assert run.first_result_time_s is None
        assert run.all_results_time_s is None
        assert run.completion_time_s > 0  # confirming emptiness costs time

    def test_baseline_agrees_on_empty(self, sparse_db):
        query = query_over(
            10.0,
            [
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4),
                ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 1e9),
            ],
        )
        baseline = run_sql_baseline(sparse_db, "sparse", query)
        assert baseline.num_results == 0

    def test_unsatisfiable_shape_conditions(self, sparse_db):
        """min length > max length: nothing can qualify, search terminates."""
        query = query_over(
            10.0,
            [
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, 5),
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.LE, 2),
            ],
        )
        run = SWEngine(sparse_db, "sparse", sample_fraction=0.5).execute(query).run
        assert run.num_results == 0


class TestSparseArea:
    def test_mostly_empty_grid(self, sparse_db):
        query = query_over(
            10.0,
            [
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 4),
                ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 5.0),
            ],
        )
        run = SWEngine(sparse_db, "sparse", sample_fraction=0.5).execute(query).run
        assert run.num_results > 0
        # Every result lies inside the populated corner.
        for r in run.results:
            assert r.bounds.lower[0] < 3.0 and r.bounds.lower[1] < 3.0

    def test_single_cell_grid_dimension(self, sparse_db):
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(0.0, 3.0), (0.0, 3.0)],
            steps=(3.0, 3.0),  # a 1x1 grid
            conditions=[
                ContentCondition(ContentObjective.of("count"), ComparisonOp.GT, 0.0)
            ],
        )
        run = SWEngine(sparse_db, "sparse", sample_fraction=0.5).execute(query).run
        assert run.num_results == 1

    def test_count_condition_only(self, sparse_db):
        query = query_over(
            10.0,
            [
                ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 2),
                ContentCondition(ContentObjective.of("count"), ComparisonOp.GE, 30.0),
            ],
        )
        run = SWEngine(sparse_db, "sparse", sample_fraction=0.5).execute(query).run
        baseline = run_sql_baseline(sparse_db, "sparse", query)
        assert {r.window for r in run.results} == {r.window for r in baseline.results}


class TestExtremeConfigurations:
    def test_one_dimensional_search(self):
        rng = np.random.default_rng(56)
        n = 300
        t = rng.uniform(0, 20, n)
        v = np.where((t > 5) & (t < 9), 80.0, 10.0) + rng.normal(0, 1, n)
        schema = TableSchema(["t", "v"], ["t"])
        db = Database()
        db.register(HeapTable("series", schema, {"t": t, "v": v}, tuples_per_block=8))
        query = SWQuery.build(
            dimensions=("t",),
            area=[(0.0, 20.0)],
            steps=(1.0,),
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.LE, 4),
                ContentCondition(ContentObjective.of("avg", col("v")), ComparisonOp.GT, 60.0),
            ],
        )
        run = SWEngine(db, "series", sample_fraction=0.5).execute(query).run
        assert run.num_results > 0
        for r in run.results:
            assert 5.0 <= r.bounds.lower[0] <= 9.0 or r.bounds.overlaps(r.bounds)

    def test_huge_alpha(self, tiny_dataset, tiny_query):
        """Extreme prefetching degenerates to near-full scans but stays exact."""
        db = make_database(tiny_dataset, "cluster")
        run = SWEngine(db, tiny_dataset.name, sample_fraction=0.3).execute(
            tiny_query, SearchConfig(alpha=8.0)
        ).run
        db2 = make_database(tiny_dataset, "cluster")
        reference = SWEngine(db2, tiny_dataset.name, sample_fraction=0.3).execute(
            tiny_query
        ).run
        assert {r.window for r in run.results} == {r.window for r in reference.results}
        assert run.stats.reads <= reference.stats.reads

    def test_single_worker_distribution_equals_engine(self, tiny_dataset, tiny_query):
        report = run_distributed(
            tiny_dataset, tiny_query, DistributedConfig(num_workers=1, sample_fraction=0.3)
        )
        db = make_database(tiny_dataset, "cluster")
        run = SWEngine(db, tiny_dataset.name, sample_fraction=0.3).execute(tiny_query).run
        assert {r.window for r in report.results} == {r.window for r in run.results}

    def test_tiny_sample_fraction_still_exact(self, tiny_dataset, tiny_query):
        db = make_database(tiny_dataset, "cluster")
        run = SWEngine(db, tiny_dataset.name, sample_fraction=0.01).execute(tiny_query).run
        db2 = make_database(tiny_dataset, "cluster")
        reference = SWEngine(db2, tiny_dataset.name, sample_fraction=0.5).execute(
            tiny_query
        ).run
        assert {r.window for r in run.results} == {r.window for r in reference.results}
