"""Cross-module integration scenarios.

These exercise realistic end-to-end flows: the same query through the
Python API, the SQL surface, the baseline, and the distributed runtime
must all agree; online behaviour must respect the cost model; interrupting
and re-running must be safe.
"""

from __future__ import annotations

import pytest

from repro import (
    CostModel,
    DistributedConfig,
    SearchConfig,
    SWEngine,
    make_database,
    run_distributed,
    run_sql_baseline,
    synthetic_dataset,
    synthetic_query,
)
from repro.sql import execute_sql
from repro.workloads.base import make_table
from repro.clock import SimClock
from repro.storage import Database


@pytest.fixture(scope="module")
def scenario():
    dataset = synthetic_dataset("medium", scale=0.2, seed=77)
    return dataset, synthetic_query(dataset)


class TestFourWayAgreement:
    def test_api_sql_baseline_distributed_agree(self, scenario):
        dataset, query = scenario
        # Python API.
        db_api = make_database(dataset, "cluster")
        api_windows = {
            r.window
            for r in SWEngine(db_api, dataset.name, sample_fraction=0.3)
            .execute(query)
            .results
        }
        # SQL surface.
        db_sql = make_database(dataset, "cluster")
        grid = dataset.grid
        _, rows = execute_sql(
            db_sql,
            f"SELECT LB(x), UB(x), LB(y), UB(y) FROM {dataset.name} "
            f"GRID BY x BETWEEN 0 AND {grid.area[0].hi} STEP {grid.steps[0]}, "
            f"y BETWEEN 0 AND {grid.area[1].hi} STEP {grid.steps[1]} "
            f"HAVING AVG(value) > 20 AND AVG(value) < 30 "
            f"AND CARD() > 5 AND CARD() < 10",
            sample_fraction=0.3,
        )
        sql_bounds = {tuple(row) for row in rows}
        api_bounds = {
            (w.rect(grid).lower[0], w.rect(grid).upper[0], w.rect(grid).lower[1], w.rect(grid).upper[1])
            for w in api_windows
        }
        assert sql_bounds == api_bounds
        # Baseline.
        db_base = make_database(dataset, "cluster")
        base_windows = {
            r.window for r in run_sql_baseline(db_base, dataset.name, query).results
        }
        assert base_windows == api_windows
        # Distributed.
        dist = run_distributed(
            dataset, query, DistributedConfig(num_workers=3, sample_fraction=0.3)
        )
        assert {r.window for r in dist.results} == api_windows


class TestCostModelPropagation:
    def test_slower_disk_slower_completion(self, scenario):
        dataset, query = scenario

        def run_with(cost_model):
            db = Database(cost_model=cost_model, clock=SimClock())
            db.register(make_table(dataset, "cluster"))
            engine = SWEngine(db, dataset.name, sample_fraction=0.3)
            return engine.execute(query).run.completion_time_s

        fast = run_with(CostModel(seek_ms=0.1, transfer_ms=0.01))
        slow = run_with(CostModel(seek_ms=5.0, transfer_ms=0.5))
        assert slow > fast * 5

    def test_zero_cpu_cost_model(self, scenario):
        dataset, query = scenario
        db = Database(
            cost_model=CostModel(sw_cpu_per_window_us=0.0), clock=SimClock()
        )
        db.register(make_table(dataset, "cluster"))
        run = SWEngine(db, dataset.name, sample_fraction=0.3).execute(query).run
        assert run.num_results > 0


class TestInterruptionAndRerun:
    def test_interrupt_then_full_run_on_warm_buffers(self, scenario):
        dataset, query = scenario
        db = make_database(dataset, "axis")
        engine = SWEngine(db, dataset.name, sample_fraction=0.3)
        partial = engine.execute(query, SearchConfig(time_limit_s=0.02))
        assert partial.run.interrupted
        # Re-running on the same database reuses warm buffers; exactness holds.
        complete = engine.execute(query)
        assert not complete.run.interrupted
        partial_windows = {r.window for r in partial.results}
        complete_windows = {r.window for r in complete.results}
        assert partial_windows <= complete_windows

    def test_online_prefix_of_blocking_result(self, scenario):
        """Every online prefix is a subset of the final exact result."""
        dataset, query = scenario
        db = make_database(dataset, "cluster")
        engine = SWEngine(db, dataset.name, sample_fraction=0.3)
        stream = engine.execute_iter(query, SearchConfig(alpha=0.5))
        prefix = [next(stream).window for _ in range(3)]
        remaining = [r.window for r in stream]
        db2 = make_database(dataset, "cluster")
        final = {
            r.window
            for r in run_sql_baseline(db2, dataset.name, query).results
        }
        assert set(prefix) <= final
        assert set(prefix) | set(remaining) == final


class TestSimTimeSanity:
    def test_clock_shared_between_components(self, scenario):
        dataset, query = scenario
        db = make_database(dataset, "cluster")
        engine = SWEngine(db, dataset.name, sample_fraction=0.3)
        before = db.clock.now
        engine.execute(query)
        after_first = db.clock.now
        assert after_first > before
        run_sql_baseline(db, dataset.name, query)
        assert db.clock.now > after_first
