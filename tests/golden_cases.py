"""Golden-trace corpus: the four seeded queries pinned under tests/golden/.

Each case builder runs one small deterministic query — synthetic and
SDSS, serial and 2-worker distributed — with a :class:`SearchTrace` and a
:class:`MetricsRegistry` attached, and returns a JSON-safe payload:
result set, timeline of trace events, and the full metrics snapshot.

``tools/regen_golden.py`` writes these payloads to ``tests/golden/`` and
``tests/test_golden_trace.py`` replays them event-by-event against the
pinned files, so any behavior drift in the search, storage, or
distributed layers shows up as a concrete first-divergence, not a flaky
aggregate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import SearchConfig, SWEngine
from repro.core.trace import SearchTrace, TraceEvent
from repro.core.window import Window
from repro.distributed import DistributedConfig, run_distributed
from repro.obs import MetricsRegistry
from repro.workloads import (
    make_database,
    sdss_dataset,
    sdss_query,
    synthetic_dataset,
    synthetic_query,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _jsonable(value):
    """Trace/result values to JSON-safe structures (Windows as [lo, hi])."""
    if isinstance(value, Window):
        return {"lo": list(value.lo), "hi": list(value.hi)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    return repr(value)


def event_jsonable(event: TraceEvent) -> dict:
    """One trace event as a stable dict (kind, time, window, detail)."""
    return {
        "kind": event.kind.value,
        "time": event.time,
        "window": _jsonable(event.window),
        "detail": {k: _jsonable(v) for k, v in sorted(event.detail.items())},
    }


def results_jsonable(results) -> list[dict]:
    """Result windows as stable dicts (window, bounds, objectives, time)."""
    return [
        {
            "window": _jsonable(r.window),
            "bounds": {"lower": list(r.bounds.lower), "upper": list(r.bounds.upper)},
            "objectives": {k: v for k, v in sorted(r.objective_values.items())},
            "time": r.time,
        }
        for r in results
    ]


def _workload(kind: str):
    if kind == "synth":
        dataset = synthetic_dataset("high", scale=0.2, seed=5)
        return dataset, synthetic_query(dataset)
    dataset = sdss_dataset(scale=0.1, seed=301)
    return dataset, sdss_query(dataset, "high")


def _serial_case(kind: str) -> dict:
    dataset, query = _workload(kind)
    database = make_database(dataset, "cluster")
    registry = MetricsRegistry()
    database.attach_metrics(registry)
    trace = SearchTrace()
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    report = engine.execute(query, SearchConfig(alpha=1.0), trace=trace)
    return {
        "mode": "serial",
        "workload": kind,
        "completion_time_s": report.run.completion_time_s,
        "results": results_jsonable(report.results),
        "trace": [event_jsonable(e) for e in trace],
        "metrics": registry.snapshot(),
    }


def _distributed_case(kind: str) -> dict:
    dataset, query = _workload(kind)
    registry = MetricsRegistry()
    trace = SearchTrace()
    config = DistributedConfig(
        num_workers=2,
        overlap="no_overlap",
        placement="cluster",
        search=SearchConfig(alpha=1.0),
        sample_fraction=0.1,
    )
    report = run_distributed(dataset, query, config, trace=trace, metrics=registry)
    return {
        "mode": "distributed",
        "workload": kind,
        "total_time_s": report.total_time_s,
        "messages_sent": report.messages_sent,
        "cells_shipped": report.cells_shipped,
        "results": results_jsonable(report.results),
        "trace": [event_jsonable(e) for e in trace],
        "metrics": report.metrics,
        "worker_metrics": report.worker_metrics,
    }


CASES = {
    "synth_serial": lambda: _serial_case("synth"),
    "synth_distributed": lambda: _distributed_case("synth"),
    "sdss_serial": lambda: _serial_case("sdss"),
    "sdss_distributed": lambda: _distributed_case("sdss"),
}


def serialize(payload: dict) -> str:
    """Deterministic JSON text for a case payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"
