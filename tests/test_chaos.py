"""Chaos suite: deterministic fault injection against the distributed layer.

The headline invariant (DESIGN.md Section 9): under any *recoverable*
fault plan — crashes with surviving neighbors, plus arbitrary message
drop/duplication/delay — the merged result set is identical to the
fault-free run's.  Under unrecoverable plans the run degrades instead of
raising, and the report names exactly what was lost.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    ComparisonOp,
    ContentCondition,
    ContentObjective,
    Grid,
    Rect,
    SWQuery,
    ShapeCondition,
    ShapeKind,
    ShapeObjective,
    col,
)
from repro.core.trace import EventKind, SearchTrace
from repro.distributed import (
    DegradedResult,
    DistributedConfig,
    FaultInjector,
    FaultPlan,
    OwnershipRouter,
    WorkerCrash,
    run_distributed,
)
from repro.distributed.partitioning import plan_partitions
from repro.errors import ConfigError, PartitionError
from repro.storage import TableSchema
from repro.workloads import Dataset

pytestmark = pytest.mark.chaos

NUM_WORKERS = 4

# The CI chaos matrix sets CHAOS_SEED per job leg; each leg then covers
# one extra seed far from the defaults, widening the searched plan space.
CHAOS_SEEDS = [1, 2, 3]
if os.environ.get("CHAOS_SEED"):
    CHAOS_SEEDS.append(101 * int(os.environ["CHAOS_SEED"]) + 13)


def _dataset(seed: int = 1, n: int = 250):
    rng = np.random.default_rng(seed)
    columns = {
        "x": rng.uniform(0, 12, n),
        "y": rng.uniform(0, 12, n),
        "v": rng.normal(20, 8, n),
    }
    grid = Grid(Rect.from_bounds([(0.0, 12.0), (0.0, 12.0)]), (1.0, 1.0))
    dataset = Dataset(
        name="rand",
        columns=columns,
        schema=TableSchema(["x", "y", "v"], ["x", "y"]),
        grid=grid,
    )
    query = SWQuery.build(
        dimensions=("x", "y"),
        area=[(0.0, 12.0), (0.0, 12.0)],
        steps=(1.0, 1.0),
        conditions=[
            ShapeCondition(ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 6),
            ContentCondition(
                ContentObjective.of("avg", col("v")), ComparisonOp.GT, 22.0
            ),
        ],
    )
    return dataset, query


def _config(**kwargs) -> DistributedConfig:
    kwargs.setdefault("num_workers", NUM_WORKERS)
    kwargs.setdefault("sample_fraction", 0.5)
    return DistributedConfig(**kwargs)


def _result_set(report):
    return sorted((r.window.lo, r.window.hi) for r in report.results)


@pytest.fixture(scope="module")
def workload():
    return _dataset()


@pytest.fixture(scope="module")
def baseline(workload):
    dataset, query = workload
    return run_distributed(dataset, query, _config())


class TestChaosEquivalence:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_recoverable_chaos_matches_fault_free(self, workload, baseline, seed):
        """Crash + drops + duplicates + delays: same result set, no loss."""
        dataset, query = workload
        plan = FaultPlan.chaos(
            seed, NUM_WORKERS, crash_at_s=baseline.total_time_s / 3
        )
        report = run_distributed(dataset, query, _config(faults=plan))
        assert _result_set(report) == _result_set(baseline)
        assert report.degraded is None
        # The plan actually exercised the reliability layer.
        assert len(report.crashed_workers) == 1
        assert report.retries > 0
        assert report.faults_injected["drops"] > 0
        assert report.faults_injected["duplicates"] > 0
        assert report.faults_injected["delays"] > 0
        if seed in (1, 2, 3):
            # The curated seeds all crash a worker mid-slab, so recovery
            # must actually re-seed anchors.  (An arbitrary seed may
            # crash a worker that already finished — ownership still
            # moves, but nothing needs re-seeding.)
            assert report.recovered_anchors > 0

    def test_same_plan_replays_identically(self, workload, baseline):
        """One seed, two runs: bit-identical schedules and reports."""
        dataset, query = workload
        crash_at = baseline.total_time_s / 3
        runs = [
            run_distributed(
                dataset,
                query,
                _config(faults=FaultPlan.chaos(7, NUM_WORKERS, crash_at_s=crash_at)),
            )
            for _ in range(2)
        ]
        assert _result_set(runs[0]) == _result_set(runs[1])
        assert runs[0].retries == runs[1].retries
        assert runs[0].messages_lost == runs[1].messages_lost
        assert runs[0].faults_injected == runs[1].faults_injected
        assert runs[0].total_time_s == runs[1].total_time_s

    def test_message_faults_without_crash(self, workload, baseline):
        """A lossy channel alone never changes the answer."""
        dataset, query = workload
        plan = FaultPlan(
            seed=11, drop_prob=0.15, duplicate_prob=0.1, delay_prob=0.15
        )
        report = run_distributed(dataset, query, _config(faults=plan))
        assert _result_set(report) == _result_set(baseline)
        assert report.degraded is None
        assert report.crashed_workers == []

    def test_crash_only_plan(self, workload, baseline):
        """A clean mid-run crash recovers through anchor reassignment."""
        dataset, query = workload
        plan = FaultPlan(
            seed=5, crashes=(WorkerCrash(1, baseline.total_time_s / 4),)
        )
        report = run_distributed(dataset, query, _config(faults=plan))
        assert _result_set(report) == _result_set(baseline)
        assert report.crashed_workers == [1]
        assert report.recovered_anchors > 0

    def test_trace_records_fault_timeline(self, workload, baseline):
        dataset, query = workload
        plan = FaultPlan.chaos(
            2, NUM_WORKERS, crash_at_s=baseline.total_time_s / 3
        )
        trace = SearchTrace()
        run_distributed(dataset, query, _config(faults=plan), trace=trace)
        summary = trace.summary()
        assert summary["faults"] >= 1  # at least the crash itself
        assert summary["retries"] > 0
        assert summary["recoveries"] >= 1  # each adopter logs one
        crash_events = [
            e for e in trace.events(EventKind.FAULT) if e.detail["fault"] == "crash"
        ]
        assert len(crash_events) == 1


class TestUnrecoverablePlans:
    def test_all_workers_crashing_degrades_instead_of_raising(self, workload):
        dataset, query = workload
        plan = FaultPlan(
            seed=9,
            crashes=tuple(
                WorkerCrash(wid, 0.001 + 0.0005 * wid) for wid in range(NUM_WORKERS)
            ),
        )
        report = run_distributed(dataset, query, _config(faults=plan))
        assert isinstance(report.degraded, DegradedResult)
        assert report.is_degraded
        # The report names what was lost: every slab, every worker.
        assert sorted(report.degraded.lost_workers) == list(range(NUM_WORKERS))
        lost = report.degraded.lost_slabs
        assert lost and lost[0][0] == 0 and lost[-1][1] == 12
        assert "unrecovered anchor slabs" in report.degraded.describe()

    def test_isolated_pair_loss(self, workload):
        """Killing both workers of a 2-worker run loses the whole area."""
        dataset, query = workload
        plan = FaultPlan(seed=3, crashes=(WorkerCrash(0, 0.001), WorkerCrash(1, 0.002)))
        report = run_distributed(
            dataset, query, _config(num_workers=2, faults=plan)
        )
        assert report.degraded is not None
        assert report.degraded.lost_slabs == ((0, 12),)


class TestFaultPlanUnit:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(drop_prob=0.8, duplicate_prob=0.3)  # sums past 1
        with pytest.raises(ConfigError):
            FaultPlan(drop_prob=-0.1)
        with pytest.raises(ConfigError):
            WorkerCrash(-1, 0.5)
        with pytest.raises(ConfigError):
            WorkerCrash(0, -0.5)

    def test_chaos_factory_is_deterministic(self):
        a = FaultPlan.chaos(4, NUM_WORKERS)
        b = FaultPlan.chaos(4, NUM_WORKERS)
        assert a == b
        assert a != FaultPlan.chaos(5, NUM_WORKERS)

    def test_injector_delivery_semantics(self):
        injector = FaultInjector(FaultPlan(seed=0, drop_prob=1.0))
        assert injector.deliveries() == []
        assert injector.drops == 1
        injector = FaultInjector(FaultPlan(seed=0, duplicate_prob=1.0))
        copies = injector.deliveries()
        assert len(copies) == 2 and copies[0] == 0.0
        injector = FaultInjector(FaultPlan(seed=0))
        assert injector.deliveries() == [0.0]  # fault-free short circuit

    def test_disk_slowdown_lookup(self):
        plan = FaultPlan(seed=0, disk_slowdowns=((2, 3.0),))
        injector = FaultInjector(plan)
        assert injector.disk_factor(2) == 3.0
        assert injector.disk_factor(0) == 1.0


class TestOwnershipRouter:
    def _router(self, workers=4, cells=12):
        grid = Grid(Rect.from_bounds([(0.0, float(cells)), (0.0, 1.0)]), (1.0, 1.0))
        return OwnershipRouter(plan_partitions(grid, workers))

    def test_midpoint_split_between_neighbors(self):
        router = self._router()
        adopted = router.reassign(1)  # slab [3, 6) with neighbors 0 and 2
        assert adopted == {0: (3, 5), 2: (5, 6)}
        assert router.owner_of_cell(4) == 0
        assert router.owner_of_cell(5) == 2
        assert router.owned_range(1) is None
        assert router.owned_range(0) == (0, 5)

    def test_edge_slab_goes_to_single_neighbor(self):
        router = self._router()
        assert router.reassign(0) == {1: (0, 3)}
        assert router.owned_range(1) == (0, 6)

    def test_cascading_loss(self):
        router = self._router(workers=2)
        assert router.reassign(0) == {1: (0, 6)}
        assert router.reassign(1) == {}
        assert router.lost_slabs() == ((0, 12),)
        assert router.owner_of_cell(3) is None

    def test_out_of_range_cell(self):
        router = self._router()
        with pytest.raises(PartitionError):
            router.owner_of_cell(99)
