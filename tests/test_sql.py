"""Unit tests for the SW SQL extension: lexer, parser, compiler, execution."""

from __future__ import annotations

import pytest

from repro.core import ComparisonOp, SearchConfig
from repro.sql import (
    CompileError,
    LexError,
    ParseError,
    compile_sql,
    execute_sql,
    execute_sql_iter,
    parse_query,
    tokenize,
)
from repro.sql.lexer import TokenType
from repro.storage import TableSchema

FIGURE2_QUERY = """
SELECT LB(ra), UB(ra), LB(dec), UB(dec), AVG(brightness)
FROM sdss
GRID BY ra BETWEEN 100 AND 300 STEP 1,
        dec BETWEEN 5 AND 40 STEP 1
HAVING AVG(brightness) > 0.8 AND LEN(ra) = 3 AND LEN(dec) = 2
"""


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e3 2.5e-2 .5")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["1", "2.5", "1e3", "2.5e-2", ".5"]

    def test_symbols(self):
        tokens = tokenize("<= >= <> != < > = ( ) ,")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!=", "<", ">", "=", "(", ")", ","]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n x")
        assert [t.value for t in tokens[:-1]] == ["select", "x"]

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("SELECT @")

    def test_eof_token(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestParser:
    def test_figure2_query(self):
        parsed = parse_query(FIGURE2_QUERY)
        assert parsed.table == "sdss"
        assert [g.name for g in parsed.grid] == ["ra", "dec"]
        assert parsed.grid[0].lo == 100.0 and parsed.grid[0].hi == 300.0
        assert parsed.grid[0].step == 1.0
        assert len(parsed.select) == 5
        assert len(parsed.having) == 3

    def test_alias(self):
        parsed = parse_query(
            "SELECT AVG(v) AS mean_v FROM t GRID BY x BETWEEN 0 AND 10 STEP 1 "
            "HAVING AVG(v) > 1"
        )
        assert parsed.select[0].label == "mean_v"

    def test_group_by_rejected_with_hint(self):
        with pytest.raises(ParseError, match="GRID BY instead"):
            parse_query("SELECT AVG(v) FROM t GROUP BY x")

    def test_or_rejected(self):
        with pytest.raises(ParseError, match="conjunctions"):
            parse_query(
                "SELECT CARD() FROM t GRID BY x BETWEEN 0 AND 1 STEP 1 "
                "HAVING CARD() > 1 OR CARD() < 5"
            )

    def test_flipped_comparison(self):
        parsed = parse_query(
            "SELECT CARD() FROM t GRID BY x BETWEEN 0 AND 10 STEP 1 HAVING 5 < CARD()"
        )
        comparison = parsed.having[0]
        assert comparison.op == ">"
        assert comparison.value == 5.0

    def test_negative_numbers(self):
        parsed = parse_query(
            "SELECT CARD() FROM t GRID BY x BETWEEN -10 AND -1 STEP 0.5 "
            "HAVING AVG(v) > -2.5"
        )
        assert parsed.grid[0].lo == -10.0
        assert parsed.having[0].value == -2.5

    def test_expression_inside_aggregate(self):
        parsed = parse_query(
            "SELECT AVG(sqrt(rowv*rowv + colv*colv)) FROM sdss "
            "GRID BY ra BETWEEN 0 AND 10 STEP 1 "
            "HAVING AVG(sqrt(rowv*rowv + colv*colv)) > 95"
        )
        call = parsed.having[0].call
        assert call.name == "avg"
        assert call.expr.columns() == {"rowv", "colv"}

    def test_count_star(self):
        parsed = parse_query(
            "SELECT CARD() FROM t GRID BY x BETWEEN 0 AND 10 STEP 1 HAVING COUNT(*) > 5"
        )
        assert parsed.having[0].call.name == "count"

    def test_unknown_function(self):
        with pytest.raises(ParseError, match="unknown window function"):
            parse_query("SELECT MEDIAN(v) FROM t GRID BY x BETWEEN 0 AND 1 STEP 1")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("SELECT CARD() FROM t GRID BY x BETWEEN 0 AND 1 STEP 1 LIMIT 5")

    def test_missing_step(self):
        with pytest.raises(ParseError, match="STEP"):
            parse_query("SELECT CARD() FROM t GRID BY x BETWEEN 0 AND 1")

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as err:
            parse_query("SELECT FROM t")
        assert err.value.position is not None


@pytest.fixture()
def schema():
    return TableSchema(["ra", "dec", "brightness"], ["ra", "dec"])


class TestCompiler:
    def test_figure2_compiles(self, schema):
        compiled = compile_sql(FIGURE2_QUERY, schema)
        query = compiled.query
        assert query.dimensions == ("ra", "dec")
        assert query.grid.shape == (200, 35)
        shape_conds = query.conditions.shape_conditions
        assert {(c.objective.dim, c.value) for c in shape_conds} == {(0, 3.0), (1, 2.0)}
        assert query.conditions.content_conditions[0].op is ComparisonOp.GT

    def test_projection(self, schema):
        from repro.core import ResultWindow, Window

        compiled = compile_sql(FIGURE2_QUERY, schema)
        window = Window((0, 0), (3, 2))
        result = ResultWindow(
            window=window,
            bounds=window.rect(compiled.query.grid),
            objective_values={"avg(brightness)": 0.9},
        )
        row = compiled.project(result)
        assert row == (100.0, 103.0, 5.0, 7.0, 0.9)
        assert compiled.column_labels[-1] == "AVG(brightness)"

    def test_unknown_dimension(self, schema):
        with pytest.raises(CompileError, match="not a coordinate column"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY nope BETWEEN 0 AND 1 STEP 1 "
                "HAVING CARD() > 1",
                schema,
            )

    def test_len_unknown_dim(self, schema):
        with pytest.raises(CompileError, match="not in GRID BY"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY ra BETWEEN 0 AND 10 STEP 1 "
                "HAVING LEN(dec) = 2",
                schema,
            )

    def test_lb_in_having_rejected(self, schema):
        with pytest.raises(CompileError, match="cannot be"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY ra BETWEEN 0 AND 10 STEP 1 "
                "HAVING LB(ra) > 5",
                schema,
            )

    def test_select_aggregate_must_be_condition(self, schema):
        with pytest.raises(CompileError, match="must also be used in a HAVING"):
            compile_sql(
                "SELECT AVG(brightness) FROM t "
                "GRID BY ra BETWEEN 0 AND 10 STEP 1 HAVING CARD() > 1",
                schema,
            )

    def test_unknown_aggregate_column(self, schema):
        with pytest.raises(CompileError, match="unknown column"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY ra BETWEEN 0 AND 10 STEP 1 "
                "HAVING AVG(nope) > 1",
                schema,
            )

    def test_invalid_step(self, schema):
        with pytest.raises(CompileError, match="STEP"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY ra BETWEEN 0 AND 10 STEP 0 "
                "HAVING CARD() > 1",
                schema,
            )

    def test_empty_between(self, schema):
        with pytest.raises(CompileError, match="empty"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY ra BETWEEN 10 AND 10 STEP 1 "
                "HAVING CARD() > 1",
                schema,
            )

    def test_duplicate_dimension(self, schema):
        with pytest.raises(CompileError, match="duplicate"):
            compile_sql(
                "SELECT CARD() FROM t GRID BY ra BETWEEN 0 AND 1 STEP 1, "
                "ra BETWEEN 0 AND 1 STEP 1 HAVING CARD() > 1",
                schema,
            )


class TestExecution:
    def _sql(self, dataset):
        grid = dataset.grid
        hi = grid.area[0].hi
        return (
            f"SELECT LB(x), UB(x), CARD(), AVG(value) "
            f"FROM {dataset.name} "
            f"GRID BY x BETWEEN 0 AND {hi} STEP {grid.steps[0]}, "
            f"y BETWEEN 0 AND {hi} STEP {grid.steps[1]} "
            f"HAVING AVG(value) > 20 AND AVG(value) < 30 "
            f"AND CARD() > 5 AND CARD() < 10"
        )

    def test_execute_sql_matches_engine(self, tiny_dataset, tiny_query, tiny_db):
        from repro.core import SWEngine

        labels, rows = execute_sql(tiny_db, self._sql(tiny_dataset), sample_fraction=0.3)
        assert labels == ("LB(x)", "UB(x)", "CARD()", "AVG(value)")
        engine_run = SWEngine(tiny_db, tiny_dataset.name, sample_fraction=0.3).execute(
            tiny_query
        )
        assert len(rows) == engine_run.run.num_results
        for row in rows:
            assert 5 < row[2] < 10
            assert 20 < row[3] < 30

    def test_execute_sql_iter_streams(self, tiny_dataset, tiny_db):
        stream = execute_sql_iter(
            tiny_db, self._sql(tiny_dataset), SearchConfig(alpha=1.0), sample_fraction=0.3
        )
        first = next(stream)
        assert len(first) == 4

    def test_unknown_table(self, tiny_db):
        with pytest.raises(KeyError, match="no table"):
            execute_sql(tiny_db, "SELECT CARD() FROM ghost GRID BY x BETWEEN 0 AND 1 STEP 1 HAVING CARD() > 0")
