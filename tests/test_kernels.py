"""Exactness tests for the hot-path kernels (``repro.core.kernels``).

The kernel layer's contract is *bitwise* equality with the naive slice
reductions it replaces — anything weaker would let exploration order
drift on exact utility ties.  These tests exercise that contract on
randomized grids in 1-3 dimensions, through the Data Manager (including
cache invalidation on reads), through the batch ``placement_*`` path
(noise model included), and end-to-end on a full search run.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ContentObjective, Grid, Rect, SearchConfig, SWEngine, Window, col
from repro.core.datamanager import DataManager
from repro.core.kernels import DataKernels, SummedAreaTable, _sliding_reduce
from repro.sampling import NoiseModel, StratifiedSampler
from repro.storage import Database, HeapTable, TableSchema
from repro.workloads import make_database


def random_windows(rng, shape, k=60):
    """Uniformly random non-empty windows over a grid shape."""
    windows = []
    for _ in range(k):
        lo = tuple(int(rng.integers(0, s)) for s in shape)
        hi = tuple(int(rng.integers(l + 1, s + 1)) for l, s in zip(lo, shape))
        windows.append(Window(lo, hi))
    return windows


def same_float(a: float, b: float) -> bool:
    """Bitwise-style equality: NaN matches NaN, otherwise exact."""
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b


# -- SummedAreaTable ---------------------------------------------------------


class TestSummedAreaTable:
    @pytest.mark.parametrize("shape", [(64,), (17, 23), (7, 9, 11)])
    def test_box_sum_matches_slice_sum(self, shape):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 1000, size=shape).astype(np.int64)
        sat = SummedAreaTable(values)
        for window in random_windows(rng, shape):
            box = tuple(slice(l, h) for l, h in zip(window.lo, window.hi))
            assert sat.window_sum(window) == float(values[box].sum())

    @pytest.mark.parametrize("shape", [(64,), (17, 23), (7, 9, 11)])
    def test_box_sums_vectorized(self, shape):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 1000, size=shape).astype(np.int64)
        sat = SummedAreaTable(values)
        windows = random_windows(rng, shape)
        lo = np.array([w.lo for w in windows])
        hi = np.array([w.hi for w in windows])
        batch = sat.box_sums(lo, hi)
        for i, window in enumerate(windows):
            assert batch[i] == sat.window_sum(window)

    @pytest.mark.parametrize("shape", [(64,), (17, 23), (7, 9, 11)])
    def test_placement_sums_match_every_slice(self, shape):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 1000, size=shape).astype(np.int64)
        sat = SummedAreaTable(values)
        lengths = tuple(max(1, s // 3) for s in shape)
        sums = sat.placement_sums(lengths)
        for pos in np.ndindex(*sums.shape):
            box = tuple(slice(p, p + l) for p, l in zip(pos, lengths))
            assert sums[pos] == float(values[box].sum())

    def test_placement_shape_too_large_raises(self):
        sat = SummedAreaTable(np.ones((4, 4)))
        with pytest.raises(ValueError):
            sat.placement_sums((5, 1))

    def test_empty_box_is_zero(self):
        sat = SummedAreaTable(np.arange(12).reshape(3, 4))
        assert sat.box_sum((1, 1), (1, 3)) == 0.0


# -- _sliding_reduce ---------------------------------------------------------


class TestSlidingReduce:
    @pytest.mark.parametrize("op", ["sum", "min", "max"])
    @pytest.mark.parametrize("shape,lengths", [
        ((64,), (5,)),
        ((17, 23), (3, 4)),
        ((17, 23), (1, 1)),     # the n == 1 copy shortcut
        ((17, 23), (3, 1)),     # trailing length-1: non-contiguous view
        ((7, 9, 11), (2, 3, 2)),
    ])
    def test_bitwise_parity_with_slices(self, op, shape, lengths):
        rng = np.random.default_rng(11)
        values = rng.normal(0.0, 100.0, size=shape)
        out = _sliding_reduce(values, lengths, op)
        for pos in np.ndindex(*out.shape):
            box = tuple(slice(p, p + l) for p, l in zip(pos, lengths))
            expected = float(getattr(values[box], op)())
            assert out[pos] == expected, (pos, op)

    def test_large_window_fallback_parity(self):
        # Above _SLIDING_MAX_CELLS the per-placement fallback must kick in
        # and still match the slice reductions.
        rng = np.random.default_rng(13)
        values = rng.normal(0.0, 10.0, size=(80, 80))
        lengths = (70, 70)  # 4900 cells > 4096
        out = _sliding_reduce(values, lengths, "sum")
        for pos in np.ndindex(*out.shape):
            box = tuple(slice(p, p + l) for p, l in zip(pos, lengths))
            assert out[pos] == float(values[box].sum())


# -- DataKernels vs the naive Data Manager path ------------------------------


@pytest.fixture()
def sparse_db():
    """A table whose points only cover x < 5 — half the grid is empty."""
    rng = np.random.default_rng(31)
    n = 500
    x = rng.uniform(0, 5, n)
    y = rng.uniform(0, 10, n)
    v = rng.normal(25, 5, n)
    schema = TableSchema(["x", "y", "v"], ["x", "y"])
    db = Database()
    db.register(HeapTable("pts", schema, {"x": x, "y": y, "v": v}, tuples_per_block=16))
    return db


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


OBJECTIVES = [
    ContentObjective.of("count"),
    ContentObjective.of("sum", col("v")),
    ContentObjective.of("avg", col("v")),
    ContentObjective.of("min", col("v")),
    ContentObjective.of("max", col("v")),
]


def make_pair(db, grid, noise=None):
    """Two Data Managers over the same sample: kernels on / off."""
    sample = StratifiedSampler(0.3, seed=21).sample(db.table("pts"), grid)
    dm_naive = DataManager(db, "pts", grid, OBJECTIVES, sample, noise=noise, use_kernels=False)
    dm_kern = DataManager(db, "pts", grid, OBJECTIVES, sample, noise=noise, use_kernels=True)
    return dm_naive, dm_kern


class TestDataKernelsParity:
    def test_scalar_queries_match(self, sparse_db, grid):
        dm_naive, dm_kern = make_pair(sparse_db, grid)
        rng = np.random.default_rng(17)
        for window in random_windows(rng, grid.shape, k=80):
            assert dm_kern.window_count(window) == dm_naive.window_count(window)
            assert dm_kern.unread_objects(window) == dm_naive.unread_objects(window)
            assert dm_kern.is_read(window) == dm_naive.is_read(window)
            for objective in OBJECTIVES:
                a = dm_kern.estimate(objective, window)
                b = dm_naive.estimate(objective, window)
                assert same_float(a, b), (objective, window)

    def test_avg_is_nan_on_empty_box(self, sparse_db, grid):
        dm_naive, dm_kern = make_pair(sparse_db, grid)
        empty = Window((7, 0), (9, 3))  # x >= 5: no tuples at all
        assert dm_kern.window_count(empty) == 0.0
        avg = ContentObjective.of("avg", col("v"))
        assert math.isnan(dm_kern.estimate(avg, empty))
        assert math.isnan(dm_naive.estimate(avg, empty))
        mn = ContentObjective.of("min", col("v"))
        assert same_float(dm_kern.estimate(mn, empty), dm_naive.estimate(mn, empty))

    def test_invalidation_after_read_window(self, sparse_db, grid):
        dm_naive, dm_kern = make_pair(sparse_db, grid)
        w = Window((1, 1), (4, 4))
        # Force a fresh SAT, then stale it with a read.
        dm_kern.kernels.placement_unread((2, 2))
        v0 = dm_kern.version
        dm_naive.read_window(w)
        dm_kern.read_window(w)
        assert dm_kern.version == v0 + 1
        assert dm_kern.unread_objects(w) == 0.0
        assert dm_kern.is_read(w)
        # Scalar queries never rebuild on their own — they fall back.
        assert dm_kern.kernels._stamp != dm_kern.version
        rng = np.random.default_rng(19)
        for window in random_windows(rng, grid.shape, k=40):
            assert dm_kern.unread_objects(window) == dm_naive.unread_objects(window)
            assert dm_kern.is_read(window) == dm_naive.is_read(window)
        # A batch query refreshes, after which scalars ride the SAT again.
        np.testing.assert_array_equal(
            dm_kern.kernels.placement_unread((2, 2)),
            dm_naive.kernels.placement_unread((2, 2)),
        )
        assert dm_kern.kernels._stamp == dm_kern.version
        assert dm_kern.unread_objects(w) == 0.0

    def test_invalidation_after_install_cell(self, sparse_db, grid):
        dm_naive, dm_kern = make_pair(sparse_db, grid)
        cell = Window((2, 2), (3, 3))
        dm_naive.read_window(cell)
        payload = dm_naive.cell_payload((2, 2))
        v0 = dm_kern.version
        dm_kern.install_cell((2, 2), payload)
        assert dm_kern.version == v0 + 1
        assert dm_kern.is_read(cell)
        assert dm_kern.unread_objects(cell) == 0.0

    def test_count_table_is_static(self, sparse_db, grid):
        _, dm_kern = make_pair(sparse_db, grid)
        kern = dm_kern.kernels
        table_before = kern.count_table
        dm_kern.read_window(Window((0, 0), (3, 3)))
        assert kern.count_table is table_before
        w = Window((0, 0), (5, 5))
        assert kern.window_count(w) == float(
            dm_kern.true_count[dm_kern.box(w)].sum()
        )


class TestPlacementParity:
    @pytest.mark.parametrize("lengths", [(1, 1), (2, 3), (4, 4)])
    def test_placement_batches_match_scalars(self, sparse_db, grid, lengths):
        dm_naive, dm_kern = make_pair(sparse_db, grid)
        # Partially read so unread/fully-read are non-trivial.
        for dm in (dm_naive, dm_kern):
            dm.read_window(Window((0, 0), (4, 6)))
        kern = dm_kern.kernels
        counts = kern.placement_counts(lengths)
        unread = kern.placement_unread(lengths)
        fully = kern.placement_fully_read(lengths)
        reduces = {o.key + o.aggregate.name: kern.placement_reduce(o, lengths) for o in OBJECTIVES}
        for pos in np.ndindex(*counts.shape):
            window = Window(pos, tuple(p + l for p, l in zip(pos, lengths)))
            assert counts[pos] == dm_naive.window_count(window)
            assert unread[pos] == dm_naive.unread_objects(window)
            assert fully[pos] == dm_naive.is_read(window)
            for objective in OBJECTIVES:
                got = reduces[objective.key + objective.aggregate.name][pos]
                want = dm_naive.estimate(objective, window)
                assert same_float(float(got), want), (objective, window)

    def test_placement_estimates_with_noise(self, sparse_db, grid):
        noise = NoiseModel(20.0, seed=23)
        dm_naive, dm_kern = make_pair(sparse_db, grid, noise=noise)
        for dm in (dm_naive, dm_kern):
            dm.read_window(Window((0, 0), (3, 10)))
        lengths = (2, 2)
        kern = dm_kern.kernels
        shape_counts = tuple(s - l + 1 for s, l in zip(grid.shape, lengths))
        windows = [
            Window(pos, tuple(p + l for p, l in zip(pos, lengths)))
            for pos in np.ndindex(*shape_counts)
        ]
        avg = ContentObjective.of("avg", col("v"))
        batch = kern.placement_estimates(avg, lengths, windows)
        for i, window in enumerate(windows):
            assert same_float(float(batch[i]), dm_naive.estimate(avg, window)), window

    def test_placement_estimates_without_windows_requires_no_noise(self, sparse_db, grid):
        noise = NoiseModel(20.0)
        _, dm_kern = make_pair(sparse_db, grid, noise=noise)
        with pytest.raises(ValueError):
            dm_kern.kernels.placement_estimates(
                ContentObjective.of("avg", col("v")), (2, 2)
            )


# -- end-to-end run parity ---------------------------------------------------


@pytest.mark.parametrize("config", [
    SearchConfig(),
    SearchConfig(refresh_reads=5),
    SearchConfig(alpha=1.0),
])
def test_kernel_run_is_byte_identical(tiny_dataset, tiny_query, config):
    runs = {}
    for use_kernels in (False, True):
        db = make_database(tiny_dataset, "cluster")
        engine = SWEngine(db, tiny_dataset.name, sample_fraction=0.2, use_kernels=use_kernels)
        run = engine.execute(tiny_query, config).run
        runs[use_kernels] = (
            [(r.window, r.time, tuple(sorted(r.objective_values.items()))) for r in run.results],
            run.completion_time_s,
            run.stats,
        )
    assert runs[True] == runs[False]


def test_kernels_property_is_cached(sparse_db, grid):
    _, dm_kern = make_pair(sparse_db, grid)
    assert isinstance(dm_kern.kernels, DataKernels)
    assert dm_kern.kernels is dm_kern.kernels
