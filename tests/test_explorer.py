"""Tests for the interactive exploration session API."""

from __future__ import annotations

import pytest

from repro.core import SearchConfig
from repro.explorer import ExplorationSession
from repro.workloads import make_database


@pytest.fixture()
def session(tiny_dataset):
    db = make_database(tiny_dataset, "cluster")
    return ExplorationSession(db, tiny_dataset.name, sample_fraction=0.3)


class TestExplore:
    def test_full_run_recorded(self, session, tiny_query):
        step = session.explore(tiny_query)
        assert step.num_results > 0
        assert not step.interrupted
        assert step.duration_s > 0
        assert session.history == (step,)
        assert session.last_results == step.results

    def test_limit_interrupts(self, session, tiny_query):
        step = session.explore(tiny_query, limit=3)
        assert step.num_results == 3
        assert step.interrupted
        full = session.explore(tiny_query)
        # The interrupted prefix is a subset of the complete result set.
        assert {r.window for r in step.results} <= {r.window for r in full.results}

    def test_limit_validation(self, session, tiny_query):
        with pytest.raises(ValueError, match="limit"):
            session.explore(tiny_query, limit=0)

    def test_sql_text_accepted(self, session, tiny_dataset):
        grid = tiny_dataset.grid
        step = session.explore(
            f"SELECT CARD() FROM {tiny_dataset.name} "
            f"GRID BY x BETWEEN 0 AND {grid.area[0].hi} STEP {grid.steps[0]}, "
            f"y BETWEEN 0 AND {grid.area[1].hi} STEP {grid.steps[1]} "
            f"HAVING AVG(value) > 20 AND AVG(value) < 30 "
            f"AND CARD() > 5 AND CARD() < 10"
        )
        assert step.num_results > 0

    def test_sql_wrong_table_rejected(self, session):
        with pytest.raises(ValueError, match="bound to table"):
            session.explore(
                "SELECT CARD() FROM other GRID BY x BETWEEN 0 AND 1 STEP 1 "
                "HAVING CARD() > 0"
            )

    def test_config_override(self, session, tiny_query):
        step = session.explore(tiny_query, config=SearchConfig(alpha=2.0))
        assert step.num_results > 0


class TestDrillDown:
    def test_finer_grid_over_result(self, session, tiny_query):
        step = session.explore(tiny_query, limit=1)
        result = step.results[0]
        fine = session.drill_down(result, refine=4)
        assert fine.grid.steps[0] == pytest.approx(tiny_query.grid.steps[0] / 4)
        assert fine.grid.area.lower == result.bounds.lower
        assert fine.grid.area.upper == result.bounds.upper
        # The drilled query runs and the session records both steps.
        fine_step = session.explore(fine)
        assert len(session.history) == 2
        assert fine_step.query is fine

    def test_drill_down_requires_history_or_base(self, session, tiny_query):
        result_like = None
        with pytest.raises(ValueError, match="no previous step"):
            session.drill_down(result_like)  # type: ignore[arg-type]

    def test_refine_validation(self, session, tiny_query):
        step = session.explore(tiny_query, limit=1)
        with pytest.raises(ValueError, match="refine"):
            session.drill_down(step.results[0], refine=1)

    def test_custom_conditions(self, session, tiny_query):
        from repro.core import ComparisonOp, ContentCondition, ContentObjective, col

        step = session.explore(tiny_query, limit=1)
        new_cond = ContentCondition(
            ContentObjective.of("avg", col("value")), ComparisonOp.GT, 24.0
        )
        fine = session.drill_down(step.results[0], conditions=[new_cond])
        assert list(fine.conditions) == [new_cond]


class TestZoomOut:
    def test_widened_area(self, session, tiny_query):
        wide = session.zoom_out(tiny_query, widen=2.0)
        base_iv = tiny_query.grid.area[0]
        wide_iv = wide.grid.area[0]
        assert wide_iv.length == pytest.approx(base_iv.length * 2.0)
        assert wide_iv.lo < base_iv.lo

    def test_widen_validation(self, session, tiny_query):
        with pytest.raises(ValueError, match="widen"):
            session.zoom_out(tiny_query, widen=1.0)
