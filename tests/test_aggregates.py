"""Unit and property tests for mergeable aggregate summaries."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import AGGREGATES, CellStats, get_aggregate

values_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=30
)


class TestCellStats:
    def test_of_values(self):
        stats = CellStats.of_values([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty(self):
        stats = CellStats.empty()
        assert stats.is_empty
        assert stats.count == 0

    def test_merge_identity(self):
        stats = CellStats.of_values([4.0, 5.0])
        assert stats.merge(CellStats.empty()) == stats
        assert CellStats.empty().merge(stats) == stats

    def test_merge_all(self):
        parts = [CellStats.of_values([1.0]), CellStats.of_values([2.0, 3.0])]
        merged = CellStats.merge_all(parts)
        assert merged == CellStats.of_values([1.0, 2.0, 3.0])

    def test_merge_all_empty_iterable(self):
        assert CellStats.merge_all([]) == CellStats.empty()

    @given(values_lists, values_lists)
    def test_merge_equals_concatenation(self, a, b):
        merged = CellStats.of_values(a).merge(CellStats.of_values(b))
        direct = CellStats.of_values(a + b)
        assert merged.count == direct.count
        assert merged.total == pytest.approx(direct.total)
        assert merged.minimum == direct.minimum
        assert merged.maximum == direct.maximum

    @given(values_lists, values_lists)
    def test_merge_commutative(self, a, b):
        x, y = CellStats.of_values(a), CellStats.of_values(b)
        assert x.merge(y) == y.merge(x)


class TestAggregates:
    def test_registry_contents(self):
        assert set(AGGREGATES) == {"count", "sum", "avg", "min", "max"}

    def test_lookup_case_insensitive(self):
        assert get_aggregate("AVG").name == "avg"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown aggregate"):
            get_aggregate("median")

    @pytest.mark.parametrize(
        "name, expected",
        [("count", 4.0), ("sum", 10.0), ("avg", 2.5), ("min", 1.0), ("max", 4.0)],
    )
    def test_finalizers(self, name, expected):
        agg = get_aggregate(name)
        assert agg.over_values([1.0, 2.0, 3.0, 4.0]) == expected

    @pytest.mark.parametrize("name", ["avg", "min", "max"])
    def test_undefined_over_empty(self, name):
        assert math.isnan(get_aggregate(name).over_values([]))

    def test_count_sum_zero_over_empty(self):
        assert get_aggregate("count").over_values([]) == 0.0
        assert get_aggregate("sum").over_values([]) == 0.0

    def test_monotone_flags(self):
        assert get_aggregate("sum").monotone_nonneg
        assert get_aggregate("count").monotone_nonneg
        assert not get_aggregate("avg").monotone_nonneg

    def test_needs_values(self):
        assert not get_aggregate("count").needs_values
        assert get_aggregate("sum").needs_values

    @given(values_lists)
    def test_distributivity_over_split(self, values):
        """Aggregating halves then merging equals aggregating all at once."""
        mid = len(values) // 2
        merged = CellStats.of_values(values[:mid]).merge(CellStats.of_values(values[mid:]))
        for name in AGGREGATES:
            direct = get_aggregate(name).over_values(values)
            via_merge = get_aggregate(name).finalize(merged)
            if math.isnan(direct):
                assert math.isnan(via_merge)
            else:
                assert via_merge == pytest.approx(direct)

    def test_numpy_input(self):
        stats = CellStats.of_values(np.array([2.0, 4.0]))
        assert stats.count == 2
        assert stats.total == 6.0
