"""Wire protocol, serve config and deterministic core semantics.

Covers the front door's pure layers — message encoding/validation, the
:class:`ServeConfig` fail-fast validation contract, the
:class:`WallClock` interface, and the :class:`ServeCore` request
surface (submit outcomes, error codes, incremental results, stats) —
without touching a socket.
"""

from __future__ import annotations

import json

import pytest

from repro.clock import SimClock, WallClock
from repro.errors import ConfigError, ProtocolError
from repro.serve import ServeConfig, ServeCore, TenantQuota
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    decode,
    encode,
    error_response,
    ok_response,
    request,
    validate_request,
)

pytestmark = pytest.mark.serve


class TestWire:
    def test_encode_is_canonical_and_newline_terminated(self):
        line = encode({"b": 1, "a": [2, 3]})
        assert line == b'{"a":[2,3],"b":1}\n'
        assert decode(line) == {"a": [2, 3], "b": 1}

    def test_decode_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not a JSON line"):
            decode(b"nope{\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="expected a JSON object"):
            decode(b"[1, 2]\n")

    def test_decode_rejects_oversized_line(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            decode(b"x" * (MAX_LINE_BYTES + 1))

    def test_request_drops_none_values(self):
        message = request("submit", 1, session="s", step_budget=None)
        assert "step_budget" not in message
        assert message["op"] == "submit" and message["id"] == 1

    def test_response_builders(self):
        assert ok_response(7, x=1) == {"ok": True, "id": 7, "x": 1}
        err = error_response(7, "bad_request", "why")
        assert err["error"]["code"] == "bad_request"
        with pytest.raises(ValueError, match="unknown error code"):
            error_response(7, "not-a-code", "why")

    def test_error_codes_and_ops_are_closed_sets(self):
        assert "server_error" in ERROR_CODES
        assert set(OPS) >= {"hello", "submit", "status", "results", "cancel"}


class TestValidateRequest:
    def test_accepts_minimal_ops(self):
        assert validate_request({"op": "hello", "id": 1}) == ("hello", 1)
        assert validate_request({"op": "stats"}) == ("stats", None)

    @pytest.mark.parametrize(
        "message, code",
        [
            ({"id": 1}, "bad_request"),
            ({"op": 42}, "bad_request"),
            ({"op": "frobnicate"}, "unknown_op"),
            ({"op": "hello", "id": [1]}, "bad_request"),
            ({"op": "status"}, "bad_request"),
            ({"op": "cancel", "session": 9}, "bad_request"),
            ({"op": "results", "session": "s", "since": -1}, "bad_request"),
            ({"op": "submit", "session": "s"}, "bad_request"),
            ({"op": "submit", "session": "s", "workload": "w", "zzz": 1}, "bad_request"),
        ],
    )
    def test_rejects_with_machine_checkable_code(self, message, code):
        with pytest.raises(ProtocolError) as excinfo:
            validate_request(message)
        assert excinfo.value.args[0] == code


class TestServeConfig:
    def test_defaults_validate(self):
        config = ServeConfig().validate()
        assert config.policy == "rr"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_live": 0}, "max_live"),
            ({"queue_limit": -1}, "queue_limit"),
            ({"slice_steps": 0}, "slice_steps"),
            ({"cache_budget": 0}, "cache_budget"),
            ({"policy": "fifo"}, "policy"),
            ({"park": "nowhere"}, "park"),
            ({"port": 70000}, "port"),
            ({"host": ""}, "host"),
        ],
    )
    def test_rejects_bad_knobs_with_config_error(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            ServeConfig(**kwargs).validate()

    def test_json_round_trip_with_quotas(self):
        config = ServeConfig(
            max_live=3,
            policy="wfq",
            quotas={"a": TenantQuota(tier="premium", max_sessions=2)},
            default_quota=TenantQuota(tier="free"),
        )
        clone = ServeConfig.from_json(json.loads(json.dumps(config.to_json())))
        assert clone == config

    def test_from_json_rejects_unknown_fields(self):
        payload = ServeConfig().to_json()
        payload["surprise"] = 1
        with pytest.raises(ConfigError, match="surprise"):
            ServeConfig.from_json(payload)


class TestWallClock:
    def test_implements_simclock_interface(self):
        wall = WallClock()
        for method in ("advance", "advance_to", "reset"):
            assert hasattr(wall, method) and hasattr(SimClock(), method)

    def test_now_is_monotone(self):
        wall = WallClock()
        a = wall.now
        b = wall.now
        assert b >= a >= 0.0

    def test_advance_raises_the_floor(self):
        wall = WallClock()
        wall.advance(100.0)
        assert wall.now >= 100.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            WallClock().advance(-1.0)

    def test_advance_to_and_reset(self):
        wall = WallClock()
        wall.advance_to(50.0)
        assert wall.now >= 50.0
        wall.reset()
        assert wall.now < 50.0


def _core(**overrides) -> ServeCore:
    defaults = dict(max_live=2, queue_limit=2, slice_steps=8)
    defaults.update(overrides)
    return ServeCore(ServeConfig(**defaults))


def _spec(name: str, **extra) -> dict:
    spec = {"session": name, "workload": "synth-low", "scale": 0.12,
            "step_budget": 20}
    spec.update(extra)
    return spec


class TestServeCore:
    def test_submit_tick_results_lifecycle(self):
        core = _core()
        response = core.submit(_spec("s1"))
        assert response["outcome"] == "live"
        while core.pending():
            assert core.tick() is not None
        assert core.tick() is None
        status = core.status("s1")
        assert status["state"] == "done"
        page = core.results("s1")
        assert page["total"] == page["next"] == len(page["results"])
        assert all({"key", "lo", "hi", "bounds", "objectives", "time"} <= set(r)
                   for r in page["results"])

    def test_results_since_pages_incrementally(self):
        core = _core()
        core.submit(_spec("s1"))
        while core.pending():
            core.tick()
        total = core.results("s1")["total"]
        assert total > 1
        first = core.results("s1", since=0)
        rest = core.results("s1", since=1)
        assert len(rest["results"]) == total - 1
        assert rest["results"] == first["results"][1:]
        assert core.results("s1", since=total)["results"] == []

    @pytest.mark.parametrize(
        "spec, code",
        [
            ({"session": "x", "workload": "nope"}, "bad_workload"),
            ({"session": "x", "workload": "synth-low", "scale": 0.0}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "scale": 2.0}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "seed": "7"}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "tenant": ""}, "bad_request"),
            ({"session": "x", "workload": "synth-low", "step_budget": 0}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "deadline_s": -1}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "placement": "pile"}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "alpha": -1}, "bad_config"),
            ({"session": "x", "workload": "synth-low", "sample_fraction": 0}, "bad_config"),
        ],
    )
    def test_submit_validation_codes(self, spec, code):
        core = _core()
        with pytest.raises(ProtocolError) as excinfo:
            core.submit(spec)
        assert excinfo.value.args[0] == code
        # Nothing mutated: rejected specs never reach the counters.
        assert core.stats()["counters"] == {}

    def test_duplicate_submit_is_an_error_not_a_mutation(self):
        core = _core()
        core.submit(_spec("s1"))
        before = core.stats()["counters"]
        with pytest.raises(ProtocolError) as excinfo:
            core.submit(_spec("s1"))
        assert excinfo.value.args[0] == "duplicate_session"
        assert core.stats()["counters"] == before

    def test_unknown_session_code(self):
        core = _core()
        with pytest.raises(ProtocolError) as excinfo:
            core.status("ghost")
        assert excinfo.value.args[0] == "unknown_session"

    def test_cancel_interrupts_next_slice(self):
        core = _core()
        core.submit(_spec("s1", step_budget=None))
        core.tick()
        response = core.cancel("s1")
        assert response["cancelled"] is True
        while core.pending():
            core.tick()
        status = core.status("s1")
        assert status["state"] == "done"
        assert status["interrupted"] is True
        # Cancelling a finished session is a visible no-op.
        assert core.cancel("s1")["cancelled"] is False

    def test_fleet_capacity_rejection(self):
        core = _core(max_live=1, queue_limit=0)
        assert core.submit(_spec("s1"))["outcome"] == "live"
        response = core.submit(_spec("s2"))
        assert response["outcome"] == "rejected"
        assert core.status("s2")["state"] == "rejected"

    def test_fingerprints_of_identical_runs_are_byte_identical(self):
        from repro.serve import fingerprint_bytes

        def run():
            core = _core()
            core.submit(_spec("s1"))
            core.submit(_spec("s2", workload="synth-low", seed=9))
            while core.pending():
                core.tick()
            return fingerprint_bytes(core.fingerprint_payload())

        assert run() == run()

    def test_stats_shape(self):
        core = _core()
        core.submit(_spec("s1"))
        stats = core.stats()
        assert {"summary", "counters", "gauges", "trace"} <= set(stats)
        assert stats["summary"]["sessions"]["s1"]["tenant"] == "default"
