"""Unit and property tests for stratified sampling, estimators, and noise."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ContentObjective, Grid, Rect, Window, col
from repro.sampling import (
    NoiseModel,
    StratifiedSampler,
    allocate_budget,
    build_objective_grids,
    default_eps,
    uniform_sample,
)
from repro.core.conditions import ComparisonOp, ContentCondition
from repro.storage import HeapTable, TableSchema


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


class TestAllocateBudget:
    def test_budget_exceeds_population(self):
        counts = np.array([5, 3, 2])
        np.testing.assert_array_equal(allocate_budget(counts, 100), counts)

    def test_even_split(self):
        counts = np.array([100, 100, 100, 100])
        np.testing.assert_array_equal(allocate_budget(counts, 40), [10, 10, 10, 10])

    def test_redistribution_from_small_cells(self):
        # Cell 0 can only give 2; its unused budget flows to the others.
        counts = np.array([2, 100, 100])
        quotas = allocate_budget(counts, 30)
        assert quotas[0] == 2
        assert quotas[1] + quotas[2] == 28

    def test_empty_cells_get_nothing(self):
        quotas = allocate_budget(np.array([0, 50]), 10)
        assert quotas[0] == 0
        assert quotas[1] == 10

    def test_remainder_distributed(self):
        quotas = allocate_budget(np.array([10, 10, 10]), 8)
        assert quotas.sum() == 8
        assert quotas.max() - quotas.min() <= 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            allocate_budget(np.array([1]), -1)

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=30),
        st.integers(0, 500),
    )
    def test_quota_invariants(self, counts, budget):
        counts = np.array(counts)
        quotas = allocate_budget(counts, budget)
        assert np.all(quotas >= 0)
        assert np.all(quotas <= counts)
        assert quotas.sum() == min(budget, counts.sum())


class TestStratifiedSampler:
    def test_sample_counts_consistent(self, small_table, grid):
        sample = StratifiedSampler(0.1, seed=1).sample(small_table, grid)
        assert sample.size == sample.rows.size == sample.cells.size
        assert sample.cell_sample_counts.sum() == sample.size
        assert sample.cell_true_counts.sum() == small_table.num_rows

    def test_true_counts_exact(self, small_table, grid):
        sample = StratifiedSampler(0.05, seed=2).sample(small_table, grid)
        coords = small_table.coordinates()
        for idx in [(0, 0), (5, 5), (9, 9)]:
            mask = (
                (coords[:, 0] >= idx[0])
                & (coords[:, 0] < idx[0] + 1)
                & (coords[:, 1] >= idx[1])
                & (coords[:, 1] < idx[1] + 1)
            )
            assert sample.cell_true_counts[idx] == int(mask.sum())

    def test_sampled_rows_belong_to_their_cells(self, small_table, grid):
        sample = StratifiedSampler(0.2, seed=3).sample(small_table, grid)
        coords = small_table.coordinates()[sample.rows]
        for (x, y), flat in zip(coords, sample.cells):
            assert grid.flat_id(grid.cell_of_point((x, y))) == flat

    def test_budget_respected(self, small_table, grid):
        sample = StratifiedSampler(0.1, seed=4).sample(small_table, grid)
        assert sample.size == int(round(0.1 * small_table.num_rows))

    def test_full_sample(self, small_table, grid):
        sample = StratifiedSampler(1.0, seed=5).sample(small_table, grid)
        assert sample.size == small_table.num_rows
        np.testing.assert_array_equal(sample.ratios(), np.ones(grid.shape))

    def test_deterministic(self, small_table, grid):
        a = StratifiedSampler(0.1, seed=6).sample(small_table, grid)
        b = StratifiedSampler(0.1, seed=6).sample(small_table, grid)
        np.testing.assert_array_equal(a.rows, b.rows)

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            StratifiedSampler(0.0)
        with pytest.raises(ValueError, match="fraction"):
            StratifiedSampler(1.5)

    def test_stratification_is_more_even_than_uniform(self, grid):
        """Stratified per-cell coverage beats uniform SRS on skewed data."""
        rng = np.random.default_rng(8)
        # 80% of tuples in one corner cell, the rest spread out.
        n = 2000
        hot = int(n * 0.8)
        x = np.concatenate([rng.uniform(0, 1, hot), rng.uniform(0, 10, n - hot)])
        y = np.concatenate([rng.uniform(0, 1, hot), rng.uniform(0, 10, n - hot)])
        table = HeapTable(
            "skew", TableSchema(["x", "y"], ["x", "y"]), {"x": x, "y": y}
        )
        strat = StratifiedSampler(0.05, seed=9).sample(table, grid)
        unif = uniform_sample(table, grid, 0.05, seed=9)
        covered = lambda s: int(((s.cell_sample_counts > 0) & (s.cell_true_counts > 0)).sum())
        assert covered(strat) > covered(unif)


class TestObjectiveGrids:
    def test_full_sample_estimates_exact(self, small_table, grid):
        sample = StratifiedSampler(1.0, seed=10).sample(small_table, grid)
        obj = ContentObjective.of("avg", col("v"))
        grids = build_objective_grids(small_table, grid, sample, obj)
        coords = small_table.coordinates()
        v = small_table.column("v")
        idx = (3, 3)
        mask = (
            (coords[:, 0] >= 3) & (coords[:, 0] < 4) & (coords[:, 1] >= 3) & (coords[:, 1] < 4)
        )
        if mask.sum():
            assert grids.scaled_sum[idx] == pytest.approx(float(v[mask].sum()))
            assert grids.sample_min[idx] == pytest.approx(float(v[mask].min()))

    def test_ratio_scaling_unbiased_total(self, small_table, grid):
        sample = StratifiedSampler(0.5, seed=11).sample(small_table, grid)
        obj = ContentObjective.of("sum", col("v"))
        grids = build_objective_grids(small_table, grid, sample, obj)
        true_total = float(small_table.column("v").sum())
        assert grids.scaled_sum.sum() == pytest.approx(true_total, rel=0.15)

    def test_count_objective_has_no_value_grids(self, small_table, grid):
        sample = StratifiedSampler(0.1, seed=12).sample(small_table, grid)
        grids = build_objective_grids(small_table, grid, sample, ContentObjective.of("count"))
        assert np.all(grids.scaled_sum == 0.0)

    def test_default_eps_avg(self, small_table, grid):
        sample = StratifiedSampler(1.0, seed=13).sample(small_table, grid)
        obj = ContentObjective.of("avg", col("v"))
        grids = build_objective_grids(small_table, grid, sample, obj)
        cond = ContentCondition(obj, ComparisonOp.GT, 25.0)
        eps = default_eps(cond, grids, total_count=600)
        v = small_table.column("v")
        expected = max(abs(25.0 - v.min()), abs(25.0 - v.max()))
        assert eps == pytest.approx(expected)

    def test_default_eps_positive(self, small_table, grid):
        sample = StratifiedSampler(0.1, seed=14).sample(small_table, grid)
        obj = ContentObjective.of("sum", col("v"))
        grids = build_objective_grids(small_table, grid, sample, obj)
        cond = ContentCondition(obj, ComparisonOp.LT, 100.0)
        assert default_eps(cond, grids, total_count=600) > 0


class TestNoiseModel:
    def test_deterministic_per_window(self):
        noise = NoiseModel(20.0, seed=1)
        w = Window((0, 0), (2, 2))
        assert noise.perturb(w, 100.0) == noise.perturb(w, 100.0)

    def test_different_windows_differ(self):
        noise = NoiseModel(20.0, seed=1)
        a = noise.perturb(Window((0, 0), (2, 2)), 100.0)
        b = noise.perturb(Window((1, 0), (3, 2)), 100.0)
        assert a != b

    def test_zero_noise_identity(self):
        noise = NoiseModel(0.0, std_pct=0.0)
        assert noise.perturb(Window((0, 0), (1, 1)), 42.0) == 42.0

    def test_mean_magnitude(self):
        """Average |perturbation| tracks the configured percentage."""
        noise = NoiseModel(20.0, std_pct=0.0, seed=2)
        deviations = [
            abs(noise.perturb(Window((i, 0), (i + 1, 1)), 100.0) - 100.0)
            for i in range(200)
        ]
        assert np.mean(deviations) == pytest.approx(20.0, rel=0.05)

    def test_large_noise_never_flips_sign(self):
        """Regression: n > 100 used to turn ``1 - n/100`` negative.

        A 150 % mean draw with the unlucky sign made the perturbed
        estimate ``v * (1 - 1.5) = -0.5 v`` — a negative count — which
        silently inverted comparisons against the condition threshold.
        Perturbation must bottom out at zero instead.
        """
        noise = NoiseModel(150.0, std_pct=50.0, seed=3)
        values = [
            noise.perturb(Window((i, 0), (i + 1, 1)), 40.0) for i in range(300)
        ]
        assert min(values) >= 0.0
        assert any(v == 0.0 for v in values)  # the clamp actually engages
        # Draws below 100 % still perturb normally in both directions.
        assert any(v > 40.0 for v in values) and any(0.0 < v < 40.0 for v in values)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            NoiseModel(-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            NoiseModel(1.0, std_pct=-1.0)
