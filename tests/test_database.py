"""Unit tests for the simulated DBMS front-end (range-aggregate queries)."""

from __future__ import annotations

import pytest

from repro.core import ContentObjective, Grid, Rect, col
from repro.storage import COUNT_KEY, Database


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


@pytest.fixture()
def avg_v():
    return ContentObjective.of("avg", col("v"))


class TestCatalog:
    def test_register_and_lookup(self, small_table):
        # Handle identity is a *simulator* property, so pin the backend
        # explicitly — under DATABASE_URL=sqlite: the handle differs.
        db = Database(backend="simulator")
        handle = db.register(small_table)
        assert handle is small_table
        assert db.table("pts") is small_table
        assert db.table_names() == ("pts",)
        assert db.disk("pts").num_blocks == small_table.num_blocks

    def test_duplicate_registration(self, small_table):
        db = Database()
        db.register(small_table)
        with pytest.raises(ValueError, match="already registered"):
            db.register(small_table)

    def test_unknown_table(self):
        with pytest.raises(KeyError, match="no table"):
            Database().table("ghost")

    def test_buffer_capacity_fraction(self, small_table):
        db = Database(buffer_fraction=0.5, min_buffer_blocks=1)
        db.register(small_table)
        assert db.buffer("pts").capacity == small_table.num_blocks // 2

    def test_min_buffer_floor(self, small_table):
        db = Database(buffer_fraction=0.01, min_buffer_blocks=16)
        db.register(small_table)
        assert db.buffer("pts").capacity == 16

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="buffer_fraction"):
            Database(buffer_fraction=0.0)


class TestRangeAggregates:
    def test_cell_values_exact(self, small_db, small_table, grid, avg_v):
        scan = small_db.range_cell_aggregates("pts", grid, (2, 3), (4, 5), [avg_v])
        x = small_table.column("x")
        y = small_table.column("y")
        v = small_table.column("v")
        for (cx, cy) in [(2, 3), (2, 4), (3, 3), (3, 4)]:
            mask = (x >= cx) & (x < cx + 1) & (y >= cy) & (y < cy + 1)
            flat = grid.flat_id((cx, cy))
            if mask.sum() == 0:
                assert flat not in scan.cells
                continue
            stats = scan.cells[flat]
            assert stats[COUNT_KEY].count == int(mask.sum())
            assert stats["v"].total == pytest.approx(float(v[mask].sum()))
            assert stats["v"].minimum == pytest.approx(float(v[mask].min()))
            assert stats["v"].maximum == pytest.approx(float(v[mask].max()))

    def test_no_cells_outside_range(self, small_db, grid, avg_v):
        scan = small_db.range_cell_aggregates("pts", grid, (2, 3), (4, 5), [avg_v])
        for flat in scan.cells:
            idx = grid.index_of_flat(flat)
            assert 2 <= idx[0] < 4 and 3 <= idx[1] < 5

    def test_elapsed_time_charged(self, small_db, grid, avg_v):
        before = small_db.clock.now
        scan = small_db.range_cell_aggregates("pts", grid, (0, 0), (5, 5), [avg_v])
        assert scan.elapsed_s > 0
        assert small_db.clock.now - before == pytest.approx(scan.elapsed_s)

    def test_buffered_rescan_cheaper(self, small_db, grid, avg_v):
        first = small_db.range_cell_aggregates("pts", grid, (1, 1), (3, 3), [avg_v])
        second = small_db.range_cell_aggregates("pts", grid, (1, 1), (3, 3), [avg_v])
        assert second.elapsed_s < first.elapsed_s

    def test_empty_region(self, small_db, grid, avg_v):
        scan = small_db.range_cell_aggregates("pts", grid, (20, 20), (25, 25), [avg_v])
        assert scan.cells == {}
        assert scan.blocks_touched == 0

    def test_count_objective_only(self, small_db, grid):
        count = ContentObjective.of("count")
        scan = small_db.range_cell_aggregates("pts", grid, (0, 0), (2, 2), [count])
        for stats in scan.cells.values():
            assert COUNT_KEY in stats


class TestFullScan:
    def test_covers_every_nonempty_cell(self, small_db, small_table, grid, avg_v):
        scan = small_db.full_scan_cell_aggregates("pts", grid, [avg_v])
        total = sum(s[COUNT_KEY].count for s in scan.cells.values())
        assert total == small_table.num_rows
        assert scan.blocks_touched == small_table.num_blocks

    def test_sequential_scan_is_one_seek(self, small_db, grid, avg_v):
        small_db.full_scan_cell_aggregates("pts", grid, [avg_v])
        assert small_db.disk("pts").seeks == 1

    def test_matches_range_query_totals(self, small_db, grid, avg_v):
        full = small_db.full_scan_cell_aggregates("pts", grid, [avg_v])
        ranged = small_db.range_cell_aggregates("pts", grid, (0, 0), (10, 10), [avg_v])
        assert set(full.cells) == set(ranged.cells)
        for flat in full.cells:
            assert full.cells[flat][COUNT_KEY].count == ranged.cells[flat][COUNT_KEY].count
