"""Tests for the distributed layer: partitioning, network, end-to-end runs."""

from __future__ import annotations

import pytest

from repro.core import Grid, Rect, SearchConfig, SWEngine
from repro.costs import CostModel
from repro.distributed import (
    CellRequest,
    CellResponse,
    DistributedConfig,
    Network,
    plan_partitions,
    run_distributed,
)
from repro.workloads import make_database


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 100.0), (0.0, 100.0)]), (5.0, 5.0))  # 20x20


class TestPartitionPlan:
    def test_even_split(self, grid):
        plan = plan_partitions(grid, 4)
        assert plan.boundaries == (0, 5, 10, 15, 20)
        assert plan.data_extension == 0

    def test_anchor_and_data_ranges(self, grid):
        plan = plan_partitions(grid, 4)
        assert plan.anchor_slab(1) == (5, 10)
        assert plan.data_range(1) == (5, 10)

    def test_owner_of_cell(self, grid):
        plan = plan_partitions(grid, 4)
        assert plan.owner_of_cell(0) == 0
        assert plan.owner_of_cell(7) == 1
        assert plan.owner_of_cell(19) == 3
        with pytest.raises(ValueError, match="beyond"):
            plan.owner_of_cell(20)

    def test_full_overlap_extension(self, grid):
        plan = plan_partitions(grid, 4, overlap="full_overlap", max_window_length_dim0=6)
        assert plan.data_extension == 5
        assert plan.data_range(0) == (0, 10)
        assert plan.data_range(3) == (15, 20)  # clipped at the grid edge

    def test_part_overlap_extension(self, grid):
        plan = plan_partitions(grid, 4, overlap="part_overlap", max_window_length_dim0=6)
        assert plan.data_extension == 2

    def test_overlap_requires_shape_bound(self, grid):
        with pytest.raises(ValueError, match="max_window_length_dim0"):
            plan_partitions(grid, 4, overlap="full_overlap")

    def test_weighted_balancing(self, grid):
        import numpy as np

        weights = np.ones(grid.shape)
        weights[:5, :] = 10.0  # first quarter holds most data
        plan = plan_partitions(grid, 2, cell_weights=weights)
        # Worker 0's slab should be narrower than half the grid.
        assert plan.boundaries[1] < 10

    def test_skew_shifts_boundaries(self, grid):
        even = plan_partitions(grid, 4)
        skewed = plan_partitions(grid, 4, skew=0.5)
        assert skewed.boundaries[1] > even.boundaries[1]

    def test_validation(self, grid):
        with pytest.raises(ValueError, match="at least one worker"):
            plan_partitions(grid, 0)
        with pytest.raises(ValueError, match="cannot split"):
            plan_partitions(grid, 50)
        with pytest.raises(ValueError, match="skew"):
            plan_partitions(grid, 2, skew=1.0)


class TestNetwork:
    def test_latency_ordering(self):
        net = Network(2, CostModel(network_latency_ms=1.0))
        net.send(1, CellRequest(0, ((0, 0),)), sent_at=0.0)
        assert net.receive(1, now=0.0005) == []
        messages = net.receive(1, now=0.01)
        assert len(messages) == 1
        assert isinstance(messages[0], CellRequest)

    def test_earliest_arrival(self):
        net = Network(2, CostModel(network_latency_ms=1.0))
        assert net.earliest_arrival(1) is None
        net.send(1, CellRequest(0, ((0, 0),)), sent_at=5.0)
        assert net.earliest_arrival(1) == pytest.approx(5.001, rel=0.1)

    def test_cells_shipped_counted(self):
        net = Network(2, CostModel())
        net.send(0, CellResponse(1, {(0, 0): {}, (0, 1): {}}), sent_at=0.0)
        assert net.cells_shipped == 2
        assert net.messages_sent == 1

    def test_pending(self):
        net = Network(2, CostModel())
        net.send(1, CellRequest(0, ((0, 0),)), sent_at=0.0)
        assert net.pending(1) == 1
        net.receive(1, now=10.0)
        assert net.pending(1) == 0


class TestDistributedRuns:
    def _single_node_windows(self, dataset, query):
        db = make_database(dataset, "cluster")
        run = SWEngine(db, dataset.name, sample_fraction=0.3).execute(query).run
        return {r.window for r in run.results}

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_single_node(self, tiny_dataset, tiny_query, workers):
        config = DistributedConfig(
            num_workers=workers, search=SearchConfig(alpha=0.5), sample_fraction=0.3
        )
        report = run_distributed(tiny_dataset, tiny_query, config)
        assert {r.window for r in report.results} == self._single_node_windows(
            tiny_dataset, tiny_query
        )

    @pytest.mark.parametrize("overlap", ["no_overlap", "full_overlap", "part_overlap"])
    def test_overlap_modes_match(self, tiny_dataset, tiny_query, overlap):
        config = DistributedConfig(
            num_workers=2,
            overlap=overlap,
            search=SearchConfig(alpha=0.5),
            sample_fraction=0.3,
        )
        report = run_distributed(tiny_dataset, tiny_query, config)
        assert {r.window for r in report.results} == self._single_node_windows(
            tiny_dataset, tiny_query
        )

    def test_full_overlap_no_messages(self, tiny_dataset, tiny_query):
        config = DistributedConfig(
            num_workers=2, overlap="full_overlap", sample_fraction=0.3
        )
        report = run_distributed(tiny_dataset, tiny_query, config)
        assert report.messages_sent == 0

    def test_no_overlap_uses_remote_requests(self, tiny_dataset, tiny_query):
        config = DistributedConfig(
            num_workers=2, overlap="no_overlap", sample_fraction=0.3
        )
        report = run_distributed(tiny_dataset, tiny_query, config)
        assert report.messages_sent > 0
        assert report.cells_shipped > 0

    def test_result_times_sorted(self, tiny_dataset, tiny_query):
        config = DistributedConfig(num_workers=2, sample_fraction=0.3)
        report = run_distributed(tiny_dataset, tiny_query, config)
        times = [r.time for r in report.results]
        assert times == sorted(times)
        assert report.total_time_s >= max(times)

    def test_more_workers_not_slower(self, tiny_dataset, tiny_query):
        t1 = run_distributed(
            tiny_dataset, tiny_query, DistributedConfig(num_workers=1, sample_fraction=0.3)
        ).total_time_s
        t4 = run_distributed(
            tiny_dataset, tiny_query, DistributedConfig(num_workers=4, sample_fraction=0.3)
        ).total_time_s
        assert t4 < t1

    def test_per_worker_stats_reported(self, tiny_dataset, tiny_query):
        config = DistributedConfig(num_workers=3, sample_fraction=0.3)
        report = run_distributed(tiny_dataset, tiny_query, config)
        assert len(report.worker_times_s) == 3
        assert sum(report.worker_result_counts) == report.num_results
        assert report.total_time_s == pytest.approx(max(report.worker_times_s))

    def test_worker_activity_stats(self, tiny_dataset, tiny_query):
        config = DistributedConfig(num_workers=3, sample_fraction=0.3)
        report = run_distributed(tiny_dataset, tiny_query, config)
        assert len(report.worker_reads) == 3
        assert len(report.worker_explored) == 3
        assert len(report.worker_blocks_read) == 3
        # Every worker did some exploration and some I/O.
        assert all(e > 0 for e in report.worker_explored)
        assert all(b > 0 for b in report.worker_blocks_read)

    def test_on_result_streaming(self, tiny_dataset, tiny_query):
        streamed = []
        config = DistributedConfig(num_workers=2, sample_fraction=0.3)
        report = run_distributed(
            tiny_dataset,
            tiny_query,
            config,
            on_result=lambda wid, res: streamed.append((wid, res.window)),
        )
        assert len(streamed) == report.num_results
        assert {w for _, w in streamed} == {r.window for r in report.results}
        assert {wid for wid, _ in streamed} <= {0, 1}


class TestNarrowSlabRegression:
    def test_min_length_query_with_narrow_last_slab(self):
        """A slab narrower than the minimum window length seeds no windows;
        its owner must still answer remote cell requests (deadlock
        regression, see Worker.step)."""
        import numpy as np

        from repro.core import (
            ComparisonOp,
            ContentCondition,
            ContentObjective,
            ShapeCondition,
            ShapeKind,
            ShapeObjective,
            SWQuery,
            col,
        )
        from repro.storage import TableSchema
        from repro.workloads import Dataset

        rng = np.random.default_rng(99)
        n = 400
        x = rng.uniform(0, 7, n)
        y = rng.uniform(0, 4, n)
        v = rng.normal(30, 5, n)
        from repro.core import Grid, Rect

        grid = Grid(Rect.from_bounds([(0.0, 7.0), (0.0, 4.0)]), (1.0, 1.0))
        dataset = Dataset(
            name="narrow",
            columns={"x": x, "y": y, "v": v},
            schema=TableSchema(["x", "y", "v"], ["x", "y"]),
            grid=grid,
        )
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(0.0, 7.0), (0.0, 4.0)],
            steps=(1.0, 1.0),
            conditions=[
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.GE, 3),
                ShapeCondition(ShapeObjective(ShapeKind.LENGTH, 0), ComparisonOp.LE, 4),
                ContentCondition(
                    ContentObjective.of("avg", col("v")), ComparisonOp.GT, 25.0
                ),
            ],
        )
        # 3 workers over 7 columns: the last slab is 2 wide < min length 3.
        config = DistributedConfig(
            num_workers=3, sample_fraction=0.5, balance_by_data=False
        )
        report = run_distributed(dataset, query, config)
        db = make_database(dataset, "cluster")
        reference = SWEngine(db, dataset.name, sample_fraction=0.5).execute(query).run
        assert {r.window for r in report.results} == {
            r.window for r in reference.results
        }


class TestEmptySlabRegression:
    def _skewed_workload(self):
        """Every row lives in the right half of the grid: with equal-cell
        slabs, the leftmost workers receive no data at all."""
        import numpy as np

        from repro.core import (
            ComparisonOp,
            ContentCondition,
            ContentObjective,
            Grid,
            Rect,
            ShapeCondition,
            ShapeKind,
            ShapeObjective,
            SWQuery,
            col,
        )
        from repro.storage import TableSchema
        from repro.workloads import Dataset

        rng = np.random.default_rng(31)
        n = 300
        x = rng.uniform(8.0, 16.0, n)  # grid covers [0, 16): left half empty
        y = rng.uniform(0.0, 8.0, n)
        v = rng.normal(25, 6, n)
        grid = Grid(Rect.from_bounds([(0.0, 16.0), (0.0, 8.0)]), (1.0, 1.0))
        dataset = Dataset(
            name="skewed",
            columns={"x": x, "y": y, "v": v},
            schema=TableSchema(["x", "y", "v"], ["x", "y"]),
            grid=grid,
        )
        query = SWQuery.build(
            dimensions=("x", "y"),
            area=[(0.0, 16.0), (0.0, 8.0)],
            steps=(1.0, 1.0),
            conditions=[
                ShapeCondition(
                    ShapeObjective(ShapeKind.CARDINALITY), ComparisonOp.LE, 6
                ),
                ContentCondition(
                    ContentObjective.of("avg", col("v")), ComparisonOp.GT, 27.0
                ),
            ],
        )
        return dataset, query

    def test_workers_with_empty_slabs_complete(self):
        """Regression: a worker whose slab holds no rows used to abort the
        whole run with "received no data"; it must instead come up with
        an empty local cache, quiesce, and still serve (empty) cells."""
        from repro.core import SWEngine
        from repro.workloads import make_database

        dataset, query = self._skewed_workload()
        single = make_database(dataset, "cluster")
        reference = {
            r.window
            for r in SWEngine(single, dataset.name, sample_fraction=0.5)
            .execute(query)
            .results
        }
        config = DistributedConfig(
            num_workers=4, sample_fraction=0.5, balance_by_data=False
        )
        report = run_distributed(dataset, query, config)
        assert {r.window for r in report.results} == reference
        # The two left workers really were data-less.
        assert report.worker_blocks_read[0] == 0
        assert report.worker_reads[0] == 0

    def test_empty_slab_worker_adopts_after_crash(self):
        """An empty-slab worker stays a first-class recovery target."""
        from repro.distributed import FaultPlan, WorkerCrash

        dataset, query = self._skewed_workload()
        config = DistributedConfig(
            num_workers=4, sample_fraction=0.5, balance_by_data=False
        )
        baseline = run_distributed(dataset, query, config)
        # Crash worker 2 (data-bearing) early: its left neighbor (1) owns
        # an empty slab and must adopt part of the work.
        faulty = DistributedConfig(
            num_workers=4,
            sample_fraction=0.5,
            balance_by_data=False,
            faults=FaultPlan(seed=2, crashes=(WorkerCrash(2, 0.0005),)),
        )
        report = run_distributed(dataset, query, faulty)
        assert report.degraded is None
        assert {r.window for r in report.results} == {
            r.window for r in baseline.results
        }
        assert report.recovered_anchors > 0
