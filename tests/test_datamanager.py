"""Unit tests for the Data Manager (cell cache + estimation overlay)."""

from __future__ import annotations

import math

import pytest

from repro.core import ContentObjective, Grid, Rect, Window, col
from repro.core.datamanager import DataManager
from repro.sampling import NoiseModel, StratifiedSampler
from repro.storage import Database


@pytest.fixture()
def grid():
    return Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))


@pytest.fixture()
def avg_v():
    return ContentObjective.of("avg", col("v"))


def make_dm(db, grid, objectives, fraction=0.3, noise=None):
    table = db.table("pts")
    sample = StratifiedSampler(fraction, seed=21).sample(table, grid)
    return DataManager(db, "pts", grid, objectives, sample, noise=noise)


class TestCounts:
    def test_window_count_exact(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        coords = small_db.table("pts").coordinates()
        w = Window((2, 2), (5, 5))
        mask = (
            (coords[:, 0] >= 2) & (coords[:, 0] < 5) & (coords[:, 1] >= 2) & (coords[:, 1] < 5)
        )
        assert dm.window_count(w) == int(mask.sum())

    def test_unread_drops_to_zero_after_read(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        w = Window((1, 1), (3, 3))
        assert dm.unread_objects(w) > 0
        dm.read_window(w)
        assert dm.unread_objects(w) == 0.0
        assert dm.is_read(w)

    def test_total_objects(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        assert dm.total_objects == small_db.table("pts").num_rows


class TestReads:
    def test_read_marks_only_target_box(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        dm.read_window(Window((0, 0), (2, 2)))
        assert dm.is_read(Window((0, 0), (2, 2)))
        assert not dm.is_read(Window((0, 0), (3, 3)))

    def test_second_read_is_noop(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        w = Window((4, 4), (6, 6))
        assert dm.read_window(w) is not None
        assert dm.read_window(w) is None
        assert dm.reads == 1

    def test_unread_box_shrinks(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        dm.read_window(Window((0, 0), (2, 4)))
        # Of a 4x4 window, only the right 2 columns remain unread.
        target = dm.unread_box(Window((0, 0), (4, 4)))
        assert target == Window((2, 0), (4, 4))

    def test_version_bumps_on_read(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        v0 = dm.version
        dm.read_window(Window((7, 7), (8, 8)))
        assert dm.version == v0 + 1


class TestEstimatesAndExactness:
    def test_exact_value_after_read(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        w = Window((2, 2), (4, 4))
        dm.read_window(w)
        coords = small_db.table("pts").coordinates()
        v = small_db.table("pts").column("v")
        mask = (
            (coords[:, 0] >= 2) & (coords[:, 0] < 4) & (coords[:, 1] >= 2) & (coords[:, 1] < 4)
        )
        assert dm.exact_value(avg_v, w) == pytest.approx(float(v[mask].mean()))

    def test_exact_value_requires_read(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        with pytest.raises(ValueError, match="unread"):
            dm.exact_value(avg_v, Window((0, 0), (1, 1)))

    def test_estimate_becomes_exact_when_read(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        w = Window((3, 3), (5, 5))
        dm.read_window(w)
        assert dm.estimate(avg_v, w) == dm.exact_value(avg_v, w)

    def test_full_sample_estimate_is_exact(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v], fraction=1.0)
        w = Window((1, 2), (4, 5))
        est = dm.estimate(avg_v, w)
        dm.read_window(w)
        assert est == pytest.approx(dm.exact_value(avg_v, w))

    def test_min_max_estimates(self, small_db, grid):
        mn = ContentObjective.of("min", col("v"))
        mx = ContentObjective.of("max", col("v"))
        dm = make_dm(small_db, grid, [mn, mx], fraction=1.0)
        w = Window((0, 0), (10, 10))
        v = small_db.table("pts").column("v")
        assert dm.estimate(mn, w) == pytest.approx(float(v.min()))
        assert dm.estimate(mx, w) == pytest.approx(float(v.max()))

    def test_empty_window_estimates_nan(self, small_db, avg_v):
        # A grid extending past the data: cells above 10 are empty.
        grid = Grid(Rect.from_bounds([(0.0, 20.0), (0.0, 20.0)]), (1.0, 1.0))
        dm = make_dm(small_db, grid, [avg_v])
        w = Window((15, 15), (17, 17))
        assert math.isnan(dm.estimate(avg_v, w))
        dm.read_window(w)
        assert math.isnan(dm.exact_value(avg_v, w))

    def test_noise_applied_only_to_unread(self, small_db, grid, avg_v):
        noise = NoiseModel(30.0, seed=3)
        dm = make_dm(small_db, grid, [avg_v], fraction=1.0, noise=noise)
        w = Window((2, 2), (4, 4))
        noisy = dm.estimate(avg_v, w)
        dm.read_window(w)
        exact = dm.estimate(avg_v, w)
        assert noisy != exact
        assert exact == dm.exact_value(avg_v, w)


class TestCellPayloads:
    def test_roundtrip_between_managers(self, small_db, grid, avg_v):
        dm1 = make_dm(small_db, grid, [avg_v])
        dm1.read_window(Window((2, 2), (3, 3)))
        payload = dm1.cell_payload((2, 2))

        db2 = Database()
        db2.register(small_db.table("pts"))
        dm2 = make_dm(db2, grid, [avg_v])
        dm2.install_cell((2, 2), payload)
        assert dm2.is_cell_read((2, 2))
        w = Window((2, 2), (3, 3))
        assert dm2.exact_value(avg_v, w) == pytest.approx(dm1.exact_value(avg_v, w))

    def test_payload_requires_read(self, small_db, grid, avg_v):
        dm = make_dm(small_db, grid, [avg_v])
        with pytest.raises(ValueError, match="not cached"):
            dm.cell_payload((0, 0))
