"""Unit and property tests for windows and the search-graph structure."""

from __future__ import annotations


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Direction, Grid, Rect, Window, enumerate_windows


@st.composite
def windows(draw, ndim=2, max_coord=12):
    lo = tuple(draw(st.integers(0, max_coord - 1)) for _ in range(ndim))
    hi = tuple(draw(st.integers(l + 1, max_coord)) for l in lo)
    return Window(lo, hi)


class TestWindowBasics:
    def test_shape_functions(self):
        w = Window((1, 2), (4, 3))
        assert w.lengths == (3, 1)
        assert w.length(0) == 3
        assert w.cardinality == 3
        assert w.anchor == (1, 2)

    def test_single_cell(self):
        w = Window.single_cell((5, 6))
        assert w.cardinality == 1
        assert w.lo == (5, 6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            Window((1, 1), (1, 2))

    def test_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="matching dimensionality"):
            Window((1,), (2, 3))

    def test_iter_cells(self):
        w = Window((0, 0), (2, 2))
        assert sorted(w.iter_cells()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_contains_cell(self):
        w = Window((1, 1), (3, 3))
        assert w.contains_cell((2, 2))
        assert not w.contains_cell((3, 2))

    def test_hashable_and_equal(self):
        assert Window((0, 0), (1, 1)) == Window((0, 0), (1, 1))
        assert len({Window((0, 0), (1, 1)), Window((0, 0), (1, 1))}) == 1


class TestWindowAlgebra:
    def test_overlap(self):
        a = Window((0, 0), (3, 3))
        b = Window((2, 2), (5, 5))
        c = Window((3, 3), (5, 5))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_intersection(self):
        a = Window((0, 0), (3, 3))
        b = Window((2, 1), (5, 2))
        assert a.intersection(b) == Window((2, 1), (3, 2))
        assert a.intersection(Window((4, 4), (5, 5))) is None

    def test_hull(self):
        a = Window((0, 0), (1, 1))
        b = Window((3, 2), (4, 4))
        assert a.hull(b) == Window((0, 0), (4, 4))

    def test_contains_window(self):
        outer = Window((0, 0), (5, 5))
        assert outer.contains_window(Window((1, 1), (3, 3)))
        assert outer.contains_window(outer)
        assert not outer.contains_window(Window((4, 4), (6, 6)))

    def test_is_extension_of(self):
        base = Window((1, 1), (2, 2))
        ext = Window((1, 1), (4, 4))
        assert ext.is_extension_of(base)
        assert not base.is_extension_of(base)
        assert not base.is_extension_of(ext)

    @given(windows(), windows())
    def test_overlap_matches_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersection(b) is not None)

    @given(windows(), windows())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_window(a)
        assert hull.contains_window(b)


class TestNeighbors:
    def test_neighbor_directions(self, grid_10x10):
        w = Window((2, 2), (4, 4))
        nbrs = set(w.neighbors(grid_10x10))
        assert nbrs == {
            Window((1, 2), (4, 4)),  # left in dim 0
            Window((2, 2), (5, 4)),  # right in dim 0
            Window((2, 1), (4, 4)),  # left in dim 1
            Window((2, 2), (4, 5)),  # right in dim 1
        }

    def test_neighbor_at_boundary(self, grid_10x10):
        w = Window((0, 0), (10, 1))
        assert w.neighbor(grid_10x10, 0, Direction.LEFT) is None
        assert w.neighbor(grid_10x10, 0, Direction.RIGHT) is None
        assert w.neighbor(grid_10x10, 1, Direction.RIGHT) == Window((0, 0), (10, 2))

    def test_every_neighbor_is_one_cell_bigger(self, grid_10x10):
        w = Window((3, 3), (5, 6))
        for nbr in w.neighbors(grid_10x10):
            assert nbr.is_extension_of(w)
            assert nbr.cardinality - w.cardinality in (
                w.cardinality // w.length(0),
                w.cardinality // w.length(1),
            )

    @given(windows(ndim=2, max_coord=10))
    def test_neighbors_contain_original(self, w):
        grid = Grid(Rect.from_bounds([(0.0, 10.0), (0.0, 10.0)]), (1.0, 1.0))
        for nbr in w.neighbors(grid):
            assert nbr.contains_window(w)

    def test_extend_validates_amount(self):
        with pytest.raises(ValueError, match=">= 1"):
            Window((0, 0), (1, 1)).extend(0, Direction.RIGHT, 0)


class TestEnumerateWindows:
    def test_count_1d(self):
        grid = Grid(Rect.from_bounds([(0.0, 4.0)]), (1.0,))
        wins = list(enumerate_windows(grid))
        # n*(n+1)/2 = 10 windows over 4 cells.
        assert len(wins) == 10
        assert len(set(wins)) == 10

    def test_count_2d(self):
        grid = Grid(Rect.from_bounds([(0.0, 3.0), (0.0, 3.0)]), (1.0, 1.0))
        wins = list(enumerate_windows(grid))
        assert len(wins) == 36  # (3*4/2)^2

    def test_max_lengths(self):
        grid = Grid(Rect.from_bounds([(0.0, 4.0)]), (1.0,))
        wins = list(enumerate_windows(grid, max_lengths=(2,)))
        assert all(w.length(0) <= 2 for w in wins)
        assert len(wins) == 7  # 4 singles + 3 pairs

    def test_max_lengths_validation(self):
        grid = Grid(Rect.from_bounds([(0.0, 4.0)]), (1.0,))
        with pytest.raises(ValueError, match="dimensionality"):
            list(enumerate_windows(grid, max_lengths=(2, 2)))

    def test_all_reachable_via_neighbors(self):
        """Every window is reachable from a cell through neighbor steps."""
        grid = Grid(Rect.from_bounds([(0.0, 4.0), (0.0, 3.0)]), (1.0, 1.0))
        reached = {Window.single_cell(c) for c in grid.iter_cells()}
        frontier = list(reached)
        while frontier:
            w = frontier.pop()
            for nbr in w.neighbors(grid):
                if nbr not in reached:
                    reached.add(nbr)
                    frontier.append(nbr)
        assert reached == set(enumerate_windows(grid))


class TestWindowRect:
    def test_rect(self, grid_10x10):
        w = Window((2, 3), (4, 5))
        rect = w.rect(grid_10x10)
        assert rect.lower == (2.0, 3.0)
        assert rect.upper == (4.0, 5.0)

    def test_rect_volume_matches_cardinality_on_unit_grid(self, grid_10x10):
        w = Window((1, 1), (4, 3))
        assert w.rect(grid_10x10).volume == pytest.approx(w.cardinality)


class TestCanonicalKey:
    """Window.key/from_key: the cross-session canonical identity."""

    def test_round_trip_and_uniqueness_over_all_windows(self):
        grid = Grid(Rect.from_bounds([(0.0, 4.0), (0.0, 3.0)]), (1.0, 1.0))
        shape = grid.shape
        keys = {}
        for window in enumerate_windows(grid):
            key = window.key(shape)
            assert key not in keys, f"{window} collides with {keys[key]}"
            keys[key] = window
            assert Window.from_key(key, shape) == window

    @given(
        st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)),
        st.data(),
    )
    def test_round_trip_3d(self, shape, data):
        lo = tuple(data.draw(st.integers(0, s - 1)) for s in shape)
        hi = tuple(data.draw(st.integers(lo[d] + 1, shape[d])) for d in range(3))
        window = Window(lo, hi)
        assert Window.from_key(window.key(shape), shape) == window

    def test_key_depends_on_shape(self):
        window = Window((1, 1), (2, 2))
        assert window.key((4, 4)) != window.key((5, 5))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimensionality"):
            Window((0, 0), (1, 1)).key((4,))

    def test_undecodable_key_rejected(self):
        shape = (3, 3)
        top = Window((2, 2), (3, 3)).key(shape)
        with pytest.raises(ValueError, match="does not decode"):
            Window.from_key(top + (3 * 3 * 4 * 4), shape)
