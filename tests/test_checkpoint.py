"""Checkpoint/resume determinism: kill a query, resume it, diff the bytes.

The contract (DESIGN.md Section 11): a query interrupted at *any* point
and resumed on a fresh engine finishes with results, trace and metrics
byte-identical to the uninterrupted run — serially and on the 2-worker
distributed path — including under an active storage fault plan, whose
injector RNG stream is part of the capture.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Diversification, SearchConfig, SWEngine
from repro.core.trace import EventKind, SearchTrace
from repro.distributed import DistributedConfig, run_distributed
from repro.errors import CheckpointError
from repro.io import metrics_to_json, read_checkpoint, write_checkpoint
from repro.obs import MetricsRegistry
from repro.storage.integrity import StorageFaultPlan
from repro.workloads import make_database, synthetic_dataset, synthetic_query

KILL_POINTS = (5, 40, 120)
DIST_KILL_POINTS = (5, 50, 400)


@pytest.fixture(scope="module")
def workload():
    dataset = synthetic_dataset("high", scale=0.2, seed=5)
    return dataset, synthetic_query(dataset)


def _engine(dataset, plan=None, registry=None):
    database = make_database(dataset, "cluster")
    if registry is not None:
        database.attach_metrics(registry)
    if plan is not None:
        database.attach_integrity(plan)
    return SWEngine(database, dataset.name, sample_fraction=0.1)


def _payload(run, trace, registry):
    """Everything observable about a serial run, as comparable bytes."""
    return json.dumps(
        {
            "results": [
                {
                    "window": [list(r.window.lo), list(r.window.hi)],
                    "bounds": [list(r.bounds.lower), list(r.bounds.upper)],
                    "objectives": sorted(r.objective_values.items()),
                    "time": r.time,
                }
                for r in run.results
            ],
            "completion_time_s": run.completion_time_s,
            "explored": run.stats.explored,
            "trace": [
                [e.kind.value, e.time, repr(e.window), repr(sorted(e.detail.items()))]
                for e in trace
            ],
        },
        sort_keys=True,
    ) + metrics_to_json(registry)


def _serial_reference(workload, plan=None):
    dataset, query = workload
    trace, registry = SearchTrace(), MetricsRegistry()
    engine = _engine(dataset, plan=plan, registry=registry)
    run = engine.prepare(query, SearchConfig(alpha=1.0), trace=trace).run()
    assert not run.interrupted
    return _payload(run, trace, registry)


class TestSerialResume:
    @pytest.mark.parametrize("kill", KILL_POINTS)
    def test_killed_run_resumes_byte_identical(self, workload, tmp_path, kill):
        dataset, query = workload
        reference = _serial_reference(workload)

        # Interrupted leg: stop after `kill` explorations, capture, and
        # round-trip the capture through the on-disk npz format.
        t1, r1 = SearchTrace(), MetricsRegistry()
        search = _engine(dataset, registry=r1).prepare(
            query, SearchConfig(alpha=1.0, step_limit=kill), trace=t1
        )
        run = search.run()
        assert run.interrupted and run.interrupt_reason == "step_limit"
        path = write_checkpoint(search.checkpoint_state(), tmp_path / f"k{kill}")
        state = read_checkpoint(path)

        # Resumed leg: fresh engine, no step limit.
        t2, r2 = SearchTrace(), MetricsRegistry()
        resumed = _engine(dataset, registry=r2).resume(
            query, state, SearchConfig(alpha=1.0), trace=t2
        )
        run2 = resumed.run()
        assert not run2.interrupted
        assert _payload(run2, t2, r2) == reference

    def test_resume_under_storage_chaos_and_scrub(self, workload, tmp_path):
        """The injector RNG stream and scrub cursor survive the capture."""
        dataset, query = workload
        plan = StorageFaultPlan.chaos(11, corruption_rate=0.01)
        cfg = dict(alpha=1.0, scrub_blocks_per_step=4)
        reference = None
        for kill in (None, 30):
            t, r = SearchTrace(), MetricsRegistry()
            engine = _engine(dataset, plan=plan, registry=r)
            search = engine.prepare(
                query, SearchConfig(**cfg, step_limit=kill), trace=t
            )
            run = search.run()
            if kill is None:
                reference = _payload(run, t, r)
                continue
            assert run.interrupted
            state = read_checkpoint(
                write_checkpoint(search.checkpoint_state(), tmp_path / "chaos")
            )
            t2, r2 = SearchTrace(), MetricsRegistry()
            resumed = _engine(dataset, plan=plan, registry=r2).resume(
                query, state, SearchConfig(**cfg), trace=t2
            )
            run2 = resumed.run()
            assert _payload(run2, t2, r2) == reference

    def test_checkpoint_event_is_live_only(self, workload):
        dataset, query = workload
        trace = SearchTrace()
        search = _engine(dataset).prepare(
            query, SearchConfig(alpha=1.0, step_limit=10), trace=trace
        )
        search.run()
        state = search.checkpoint_state()
        assert trace.events(EventKind.CHECKPOINT)  # marked on the capturing run
        assert all(s["kind"] != "checkpoint" for s in state["trace"])

    def test_deadline_and_cancel_interrupt_reasons(self, workload):
        dataset, query = workload
        search = _engine(dataset).prepare(
            query, SearchConfig(alpha=1.0, deadline_s=0.0)
        )
        run = search.run()
        assert run.interrupted and run.interrupt_reason == "deadline"

        search = _engine(dataset).prepare(query, SearchConfig(alpha=1.0))
        search.cancel()
        run = search.run()
        assert run.interrupted and run.interrupt_reason == "cancelled"


class TestSerialGuards:
    def _interrupted_state(self, workload, **engine_kw):
        dataset, query = workload
        search = _engine(dataset, **engine_kw).prepare(
            query, SearchConfig(alpha=1.0, step_limit=10)
        )
        search.run()
        return search.checkpoint_state()

    def test_diversified_search_refuses_to_checkpoint(self, workload):
        dataset, query = workload
        search = _engine(dataset).prepare(
            query,
            SearchConfig(alpha=1.0, diversification=Diversification.DIST_JUMPS),
        )
        with pytest.raises(CheckpointError, match="diversification"):
            search.checkpoint_state()

    def test_config_mismatch_names_the_keys(self, workload):
        dataset, query = workload
        state = self._interrupted_state(workload)
        other = _engine(dataset).prepare(query, SearchConfig(alpha=2.0))
        with pytest.raises(CheckpointError, match="alpha"):
            other.restore_state(state)

    def test_stale_clock_is_rejected(self, workload):
        dataset, query = workload
        state = self._interrupted_state(workload)
        engine = _engine(dataset)
        engine.database.clock.advance(1e9)
        search = engine.prepare(query, SearchConfig(alpha=1.0))
        with pytest.raises(CheckpointError, match="already past"):
            search.restore_state(state)

    def test_integrity_attachment_parity_enforced(self, workload):
        dataset, query = workload
        state = self._interrupted_state(workload)  # captured without a plan
        engine = _engine(dataset, plan=StorageFaultPlan(seed=0))
        with pytest.raises(CheckpointError, match="fault plan"):
            engine.resume(query, state, SearchConfig(alpha=1.0))

    def test_format_version_is_checked(self, workload):
        dataset, query = workload
        state = self._interrupted_state(workload)
        state["format_version"] = 999
        search = _engine(dataset).prepare(query, SearchConfig(alpha=1.0))
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            search.restore_state(state)


def _dist_config(**kw):
    return DistributedConfig(
        num_workers=2,
        overlap="no_overlap",
        placement="cluster",
        search=SearchConfig(alpha=1.0),
        sample_fraction=0.1,
        **kw,
    )


def _dist_payload(report, trace):
    return json.dumps(
        {
            "results": [
                [list(r.window.lo), list(r.window.hi),
                 sorted(r.objective_values.items()), r.time]
                for r in report.results
            ],
            "total_time_s": report.total_time_s,
            "messages_sent": report.messages_sent,
            "cells_shipped": report.cells_shipped,
            "trace": [
                [e.kind.value, e.time, repr(e.window), repr(sorted(e.detail.items()))]
                for e in trace
            ],
            "metrics": report.metrics,
            "worker_metrics": report.worker_metrics,
        },
        sort_keys=True,
    )


class TestDistributedResume:
    @pytest.fixture(scope="class")
    def reference(self, workload):
        dataset, query = workload
        trace, registry = SearchTrace(), MetricsRegistry()
        report = run_distributed(
            dataset, query, _dist_config(), trace=trace, metrics=registry
        )
        assert not report.interrupted and report.degraded is None
        return _dist_payload(report, trace)

    @pytest.mark.parametrize("kill", DIST_KILL_POINTS)
    def test_killed_run_resumes_byte_identical(
        self, workload, reference, tmp_path, kill
    ):
        dataset, query = workload
        t1, r1 = SearchTrace(), MetricsRegistry()
        rep1 = run_distributed(
            dataset,
            query,
            _dist_config(checkpoint_after_steps=kill),
            trace=t1,
            metrics=r1,
        )
        assert rep1.interrupted and rep1.checkpoint is not None
        assert rep1.degraded is None
        state = read_checkpoint(
            write_checkpoint(rep1.checkpoint, tmp_path / f"dist{kill}")
        )
        t2, r2 = SearchTrace(), MetricsRegistry()
        rep2 = run_distributed(
            dataset, query, _dist_config(), trace=t2, metrics=r2, resume_from=state
        )
        assert not rep2.interrupted
        assert _dist_payload(rep2, t2) == reference

    def test_faults_and_checkpoint_are_mutually_exclusive(self, workload):
        from repro.distributed import FaultPlan

        dataset, query = workload
        with pytest.raises(CheckpointError, match="fault-free"):
            run_distributed(
                dataset,
                query,
                _dist_config(checkpoint_after_steps=5, faults=FaultPlan(seed=1)),
            )

    def test_config_mismatch_names_the_keys(self, workload):
        dataset, query = workload
        rep = run_distributed(dataset, query, _dist_config(checkpoint_after_steps=5))
        bad = _dist_config()
        bad.num_workers = 3
        with pytest.raises(CheckpointError, match="num_workers"):
            run_distributed(dataset, query, bad, resume_from=rep.checkpoint)

    def test_serial_capture_is_rejected(self, workload):
        dataset, query = workload
        search = _engine(dataset).prepare(
            query, SearchConfig(alpha=1.0, step_limit=10)
        )
        search.run()
        with pytest.raises(CheckpointError, match="distributed"):
            run_distributed(
                dataset, query, _dist_config(), resume_from=search.checkpoint_state()
            )

    def test_checkpoint_after_steps_validated(self):
        with pytest.raises(CheckpointError, match=">= 1"):
            _dist_config(checkpoint_after_steps=0)


class TestCheckpointFile:
    def test_round_trip_preserves_arrays_and_nonfinite(self, tmp_path):
        import numpy as np

        state = {
            "format_version": 1,
            "nested": {"arr": np.arange(6, dtype=np.int32).reshape(2, 3)},
            "list": [np.array([1.5, -2.5]), {"deep": np.zeros(0)}],
            "inf": float("inf"),
            "neg": float("-inf"),
            "none": None,
        }
        loaded = read_checkpoint(write_checkpoint(state, tmp_path / "rt"))
        assert loaded["format_version"] == 1
        np.testing.assert_array_equal(
            loaded["nested"]["arr"], state["nested"]["arr"]
        )
        assert loaded["nested"]["arr"].dtype == np.int32
        np.testing.assert_array_equal(loaded["list"][0], [1.5, -2.5])
        assert loaded["list"][1]["deep"].size == 0
        assert loaded["inf"] == float("inf") and loaded["neg"] == float("-inf")
        assert loaded["none"] is None

    def test_write_is_atomic_no_temp_droppings(self, tmp_path):
        path = write_checkpoint({"x": 1}, tmp_path / "atomic")
        assert path.suffix == ".npz"
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []


def _dm_digest(state: dict) -> str:
    """Stable digest of a DataManager.state() capture."""
    import hashlib

    h = hashlib.sha1()
    h.update(state["read_mask"].tobytes())
    h.update(state["unread_count"].tobytes())
    for family in ("eff_sum", "eff_min", "eff_max"):
        for key in sorted(state[family]):
            h.update(key.encode())
            h.update(state[family][key].tobytes())
    h.update(
        repr(
            (
                state["version"],
                state["reads"],
                state["cells_read"],
                state["retired_blocks_read"],
                state["degraded_cells"],
            )
        ).encode()
    )
    return h.hexdigest()


class TestDataManagerCaptureIsolation:
    def test_capture_survives_later_mutation(self, workload):
        """A state() capture must be snapshots, not views of live arrays.

        The serving layer parks sessions on captures and resumes them many
        reads later — a capture aliasing the live overlays would silently
        corrupt every parked session the moment the manager reads again.
        """
        dataset, query = workload
        search = _engine(dataset).prepare(
            query, SearchConfig(alpha=1.0, step_limit=25)
        )
        search.run()
        data = search.data
        capture = data.state()
        frozen = _dm_digest(capture)
        assert data.unread_count.sum() > 0, "need unread cells left to mutate"

        # Mutate the live manager: read everything it has not read yet.
        from repro.core.window import Window

        data.read_window(Window((0,) * len(data.grid.shape), data.grid.shape))
        assert data.unread_count.sum() == 0
        assert _dm_digest(capture) == frozen, "capture aliased live arrays"

        # The stale capture restores byte-identically on a fresh manager.
        fresh = _engine(dataset).prepare(query, SearchConfig(alpha=1.0))
        fresh.data.restore_state(capture)
        assert _dm_digest(fresh.data.state()) == frozen


class TestStreamingInterruption:
    """SWEngine.execute_iter under step_limit and cancel() (DESIGN.md §11)."""

    def test_step_limit_stream_matches_blocking_and_resumes(self, workload, tmp_path):
        dataset, query = workload
        reference = _serial_reference(workload)

        t1, r1 = SearchTrace(), MetricsRegistry()
        engine = _engine(dataset, registry=r1)
        stream = engine.execute_iter(
            query, SearchConfig(alpha=1.0, step_limit=40), trace=t1
        )
        partial = list(stream)
        report = stream.report()
        assert report.run.interrupted
        assert report.run.interrupt_reason == "step_limit"
        assert report.run.results == partial
        assert report.disk_stats["blocks_read"] > 0

        # The streamed partial run is byte-identical to the blocking path
        # interrupted at the same step.
        t2, r2 = SearchTrace(), MetricsRegistry()
        run2 = (
            _engine(dataset, registry=r2)
            .prepare(query, SearchConfig(alpha=1.0, step_limit=40), trace=t2)
            .run()
        )
        assert _payload(report.run, t1, r1) == _payload(run2, t2, r2)

        # And its search is checkpointable: resume finishes to the
        # uninterrupted reference bytes.
        state = read_checkpoint(
            write_checkpoint(stream.search.checkpoint_state(), tmp_path / "stream")
        )
        t3, r3 = SearchTrace(), MetricsRegistry()
        resumed = _engine(dataset, registry=r3).resume(
            query, state, SearchConfig(alpha=1.0), trace=t3
        )
        run3 = resumed.run()
        assert not run3.interrupted
        assert _payload(run3, t3, r3) == reference

    def test_cancel_mid_iteration_matches_blocking_cancel(self, workload, tmp_path):
        dataset, query = workload
        stop_at = 3

        t1, r1 = SearchTrace(), MetricsRegistry()
        engine = _engine(dataset, registry=r1)
        stream = engine.execute_iter(query, SearchConfig(alpha=1.0), trace=t1)
        got = []
        for result in stream:
            got.append(result)
            if len(got) == stop_at:
                stream.cancel()
        assert len(got) == stop_at, "cancel must stop the stream cooperatively"
        report = stream.report()
        assert report.run.interrupted
        assert report.run.interrupt_reason == "cancelled"
        assert report.run.results == got
        assert report.run.completion_time_s is not None

        # Blocking leg: same cancel point through iter_results().
        t2, r2 = SearchTrace(), MetricsRegistry()
        search2 = _engine(dataset, registry=r2).prepare(
            query, SearchConfig(alpha=1.0), trace=t2
        )
        run2 = search2.new_run()
        for n, _result in enumerate(search2.iter_results(run2), start=1):
            if n == stop_at:
                search2.cancel()
        assert _payload(report.run, t1, r1) == _payload(run2, t2, r2)

        # A cancelled stream checkpoints and resumes to the full answer
        # (the cancel flag is transient, not part of the capture).
        state = read_checkpoint(
            write_checkpoint(stream.search.checkpoint_state(), tmp_path / "cancel")
        )
        t3, r3 = SearchTrace(), MetricsRegistry()
        run3 = (
            _engine(dataset, registry=r3)
            .resume(query, state, SearchConfig(alpha=1.0), trace=t3)
            .run()
        )
        assert not run3.interrupted
        assert _payload(run3, t3, r3) == _serial_reference(workload)

    def test_close_leaves_search_checkpointable(self, workload):
        dataset, query = workload
        engine = _engine(dataset)
        stream = engine.execute_iter(query, SearchConfig(alpha=1.0))
        next(stream)
        stream.close()
        assert list(stream) == []  # closed: no more results
        state = stream.search.checkpoint_state()
        assert state["results"], "capture carries the streamed progress"
