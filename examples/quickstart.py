"""Quickstart: find bright clusters in a synthetic 2-D dataset.

Builds the paper's synthetic workload (eight planted clusters, four of
which satisfy the query), stores it in the simulated DBMS under a
clustered placement, and streams Semantic Window results online.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SearchConfig,
    SWEngine,
    make_database,
    run_sql_baseline,
    synthetic_dataset,
    synthetic_query,
)


def main() -> None:
    # 1. Generate data: a 40x40 grid with four target clusters whose
    #    `value` attribute averages inside (20, 30).
    dataset = synthetic_dataset("high", scale=0.4, seed=7)
    print(f"dataset: {dataset.num_rows:,} tuples on a {dataset.grid.shape} grid")

    # 2. Load it into the simulated DBMS (clustered physical placement).
    database = make_database(dataset, placement="cluster")

    # 3. The query: card(w) in (5, 10) and avg(value) in (20, 30).
    query = synthetic_query(dataset)
    print(f"query: {query}\n")

    # 4. Stream results online with moderate prefetching (alpha = 1.0).
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    print("online results (simulated seconds):")
    count = 0
    for result in engine.execute_iter(query, SearchConfig(alpha=1.0)):
        count += 1
        if count <= 8 or count % 25 == 0:
            avg = result.objective_values["avg(value)"]
            print(
                f"  t={result.time:7.3f}s  window {result.bounds!r}  "
                f"card={result.window.cardinality}  avg={avg:.2f}"
            )
    print(f"\ntotal qualifying windows: {count}")

    # 5. Compare with the blocking complex-SQL baseline.
    base_db = make_database(dataset, placement="cluster")
    baseline = run_sql_baseline(base_db, dataset.name, query)
    print(
        f"baseline (recursive-CTE equivalent): {baseline.num_results} results, "
        f"all delivered only at t={baseline.total_time_s:.2f}s "
        f"(I/O {baseline.io_time_s:.2f}s + CPU {baseline.cpu_time_s:.2f}s)"
    )


if __name__ == "__main__":
    main()
