"""Optimization queries and result analytics (Section 8 extensions).

Finds the window with the *maximum* average value via the MAXIMIZE SQL
extension, watching the online incumbent improve, then post-processes an
ordinary query's results with the multi-window analytics helpers
(nearest neighbors, distance-threshold grouping).

Run:  python examples/optimization_queries.py
"""

from __future__ import annotations

from repro import (
    SearchConfig,
    SWEngine,
    group_by_distance,
    make_database,
    nearest_neighbors,
    synthetic_dataset,
    synthetic_query,
)
from repro.sql import execute_optimize


def main() -> None:
    dataset = synthetic_dataset("high", scale=0.3, seed=29)
    database = make_database(dataset, placement="cluster")
    hi = dataset.grid.area[0].hi
    step = dataset.grid.steps[0]

    # --- MAXIMIZE: which 2x2-to-3x3 region has the highest average? ---
    result = execute_optimize(
        database,
        f"""
        SELECT LB(x), UB(x), AVG(value)
        FROM {dataset.name}
        GRID BY x BETWEEN 0 AND {hi} STEP {step},
                y BETWEEN 0 AND {hi} STEP {step}
        HAVING CARD() >= 4 AND CARD() <= 9
        MAXIMIZE AVG(value)
        """,
        sample_fraction=0.2,
    )
    print("online incumbents for MAXIMIZE AVG(value):")
    for inc in result.trajectory:
        print(f"  t={inc.time:7.3f}s  avg={inc.value:6.2f}  window={inc.window}")
    print(
        f"optimum proven after {result.windows_evaluated:,} windows "
        f"({result.completion_time_s:.2f}s simulated)\n"
    )

    # --- multi-window analytics over an ordinary query's results ---
    engine = SWEngine(database, dataset.name, sample_fraction=0.2)
    results = engine.execute(synthetic_query(dataset), SearchConfig(alpha=1.0)).results
    groups = group_by_distance(results, threshold=0.0)
    print(f"{len(results)} results form {len(groups)} overlap-connected groups:")
    for group in groups:
        anchor = min(g.window.anchor for g in group)
        print(f"  group of {len(group):3d} windows near cell {anchor}")

    nn = nearest_neighbors(results)
    isolated = max(nn, key=lambda t: t[2])
    print(
        f"\nmost isolated result: #{isolated[0]} at distance "
        f"{isolated[2]:,.0f} from its nearest neighbor"
    )


if __name__ == "__main__":
    main()
