"""Time-series exploration: the paper's Example 2.

One-dimensional Semantic Windows over daily stock prices: find the time
intervals of one to three years whose average price exceeds 50.  Shows
both the Python API and the SQL form of the same query.

Run:  python examples/stock_intervals.py
"""

from __future__ import annotations

from repro import SWEngine, make_database, stock_dataset, stock_query
from repro.sql import execute_sql
from repro.workloads import DAYS_PER_YEAR


def main() -> None:
    dataset = stock_dataset(years=16, bull_years=(3, 4, 9, 13), seed=17)
    database = make_database(dataset, placement="cluster")
    print(
        f"price series: {dataset.num_rows:,} ticks over "
        f"{dataset.meta['years']} years; bull years planted at "
        f"{dataset.meta['bull_years']}\n"
    )

    # Python API form.
    query = stock_query(dataset, threshold=50.0)
    engine = SWEngine(database, dataset.name, sample_fraction=0.1)
    print("qualifying intervals (Python API):")
    report = engine.execute(query)
    for result in report.results:
        lo_year = result.bounds[0].lo / DAYS_PER_YEAR
        hi_year = result.bounds[0].hi / DAYS_PER_YEAR
        avg = result.objective_values["avg(price)"]
        print(
            f"  years [{lo_year:4.1f}, {hi_year:4.1f})  "
            f"length={result.window.length(0)}y  avg price={avg:6.2f}  "
            f"found at t={result.time:.3f}s"
        )

    # The same query in the SQL extension (LEN conditions on the single
    # time dimension; the step is one year).
    horizon = dataset.meta["years"] * DAYS_PER_YEAR
    sql = f"""
        SELECT LB(time), UB(time), LEN(time), AVG(price)
        FROM stocks
        GRID BY time BETWEEN 0 AND {horizon} STEP {DAYS_PER_YEAR}
        HAVING AVG(price) > 50 AND LEN(time) >= 1 AND LEN(time) <= 3
    """
    labels, rows = execute_sql(database, sql)
    print(f"\nSQL form returned {len(rows)} rows with columns {labels}")
    assert len(rows) == report.run.num_results


if __name__ == "__main__":
    main()
