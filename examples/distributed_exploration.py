"""Distributed exploration: scale-out with partitioned search areas.

Runs the synthetic high-spread query on 1, 2 and 4 simulated workers
under the three data-overlap regimes of the paper's Section 6.7 and
reports first-result / all-results / total times — the Table 4 metrics.

Run:  python examples/distributed_exploration.py
"""

from __future__ import annotations

from repro import (
    DistributedConfig,
    SearchConfig,
    run_distributed,
    synthetic_dataset,
    synthetic_query,
)


def main() -> None:
    dataset = synthetic_dataset("high", scale=0.35, seed=23)
    query = synthetic_query(dataset)
    print(f"dataset: {dataset.num_rows:,} tuples on a {dataset.grid.shape} grid\n")

    header = f"{'config':26s} {'first(s)':>9s} {'all(s)':>9s} {'total(s)':>9s} {'msgs':>6s}"
    print(header)
    print("-" * len(header))
    reference = None
    for workers in (1, 2, 4):
        for overlap in ("no_overlap", "full_overlap"):
            if workers == 1 and overlap != "no_overlap":
                continue
            config = DistributedConfig(
                num_workers=workers,
                overlap=overlap,
                placement="cluster",
                search=SearchConfig(alpha=1.0),
                sample_fraction=0.15,
            )
            report = run_distributed(dataset, query, config)
            if reference is None:
                reference = {r.window for r in report.results}
            else:
                # Exactness holds regardless of partitioning.
                assert {r.window for r in report.results} == reference
            print(
                f"{workers} worker(s), {overlap:13s} "
                f"{report.first_result_time_s:9.3f} "
                f"{report.all_results_time_s:9.3f} "
                f"{report.total_time_s:9.3f} "
                f"{report.messages_sent:6d}"
            )
    print("\nevery configuration returned the identical exact result set")


if __name__ == "__main__":
    main()
