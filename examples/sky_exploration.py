"""Sky exploration with the SQL extension: the paper's Example 1 workflow.

A synthetic SDSS-like catalog is queried with the proposed GRID BY syntax
(paper Figure 2) for regions of co-moving fast stars; the first result is
then *drilled into* with a finer grid — the interactive, human-in-the-loop
exploration pattern the paper motivates ("she might want to study some of
the results more closely by making any of them the new search area").

Run:  python examples/sky_exploration.py
"""

from __future__ import annotations

from repro import SearchConfig, make_database, sdss_dataset
from repro.sql import execute_sql, execute_sql_iter


def main() -> None:
    dataset = sdss_dataset(scale=0.3, seed=11)
    database = make_database(dataset, placement="cluster")
    print(f"catalog: {dataset.num_rows:,} stars on a {dataset.grid.shape} grid\n")

    ra_step = dataset.grid.steps[0]
    dec_step = dataset.grid.steps[1]

    # Stage 1: coarse exploration with the paper's SQL extensions.
    sql = f"""
        SELECT LB(ra), UB(ra), LB(dec), UB(dec),
               AVG(sqrt(rowv*rowv + colv*colv)) AS speed
        FROM sdss
        GRID BY ra BETWEEN 113 AND 229 STEP {ra_step},
                dec BETWEEN 8 AND 34 STEP {dec_step}
        HAVING AVG(sqrt(rowv*rowv + colv*colv)) > 95
           AND AVG(sqrt(rowv*rowv + colv*colv)) < 96
           AND CARD() > 10 AND CARD() < 20
    """
    print("stage 1 — coarse search for co-moving regions (speed in (95, 96)):")
    first_region = None
    for i, row in enumerate(execute_sql_iter(database, sql, SearchConfig(alpha=1.0))):
        if first_region is None:
            first_region = row
        if i < 5:
            print(
                f"  ra [{row[0]:7.2f}, {row[1]:7.2f})  "
                f"dec [{row[2]:6.2f}, {row[3]:6.2f})  speed={row[4]:.2f}"
            )
        if i >= 40:
            print("  ... (interrupting the query — enough to pick a region)")
            break
    assert first_region is not None, "no qualifying region found"

    # Stage 2: drill into the first region with a 4x finer grid.  This is
    # a brand-new ad hoc query — exactly why the paper cannot materialize
    # the grid up front.
    lb_ra, ub_ra, lb_dec, ub_dec, _ = first_region
    fine_sql = f"""
        SELECT LB(ra), UB(ra), LB(dec), UB(dec),
               AVG(sqrt(rowv*rowv + colv*colv)) AS speed
        FROM sdss
        GRID BY ra BETWEEN {lb_ra} AND {ub_ra} STEP {ra_step / 4},
                dec BETWEEN {lb_dec} AND {ub_dec} STEP {dec_step / 4}
        HAVING AVG(sqrt(rowv*rowv + colv*colv)) > 95
           AND AVG(sqrt(rowv*rowv + colv*colv)) < 96.5
           AND CARD() >= 4 AND CARD() <= 16
    """
    print(
        f"\nstage 2 — drill-down into ra [{lb_ra:.2f}, {ub_ra:.2f}) x "
        f"dec [{lb_dec:.2f}, {ub_dec:.2f}) at 4x resolution:"
    )
    labels, rows = execute_sql(database, fine_sql)
    for row in rows[:8]:
        print(
            f"  ra [{row[0]:7.2f}, {row[1]:7.2f})  "
            f"dec [{row[2]:6.2f}, {row[3]:6.2f})  speed={row[4]:.2f}"
        )
    print(f"  ... {len(rows)} fine-grained windows in the drilled-down region")


if __name__ == "__main__":
    main()
