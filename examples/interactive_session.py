"""An interactive exploration session with tracing and terminal plots.

Ties the human-in-the-loop features together: run a query until a few
results arrive, interrupt, render where they are, drill into the most
interesting one at a finer grid, and inspect the execution trace.

Run:  python examples/interactive_session.py
"""

from __future__ import annotations

from repro import (
    ExplorationSession,
    SearchConfig,
    SearchTrace,
    SWEngine,
    make_database,
    render_results,
    render_timeline,
    synthetic_dataset,
    synthetic_query,
)


def main() -> None:
    dataset = synthetic_dataset("high", scale=0.3, seed=37)
    database = make_database(dataset, placement="cluster")
    session = ExplorationSession(
        database, dataset.name, sample_fraction=0.15, config=SearchConfig(alpha=1.0)
    )

    # Step 1: start broad, stop after the first handful of results.
    query = synthetic_query(dataset)
    step = session.explore(query, limit=8)
    print(
        f"step 1: interrupted after {step.num_results} results "
        f"({step.duration_s:.3f}s simulated)\n"
    )
    print("where they are:")
    print(render_results(list(step.results), query.grid, max_width=40))

    # Step 2: drill into the strongest result at 4x resolution.
    best = max(step.results, key=lambda r: -abs(r.objective_values["avg(value)"] - 25))
    fine_query = session.drill_down(best, refine=4)
    fine_step = session.explore(fine_query)
    print(
        f"\nstep 2: drill-down over {best.bounds!r} found "
        f"{fine_step.num_results} fine-grained windows"
    )

    # Step 3: a traced full run for the post-mortem.
    trace = SearchTrace()
    engine = SWEngine(database, dataset.name, sample_fraction=0.15)
    report = engine.execute(query, SearchConfig(alpha=1.0), trace=trace)
    summary = trace.summary()
    print("\nfull-run trace summary:")
    for key, value in summary.items():
        print(f"  {key}: {value}")
    print("\nresult arrivals:")
    print(render_timeline(report.results, total_time=report.run.completion_time_s))

    print("\nsession history:")
    for i, past in enumerate(session.history, 1):
        status = "interrupted" if past.interrupted else "complete"
        print(
            f"  #{i}: {past.num_results} results in {past.duration_s:.3f}s ({status})"
        )


if __name__ == "__main__":
    main()
