#!/usr/bin/env python
"""Regenerate the golden-trace corpus under tests/golden/.

Run after an *intentional* behavior change, review the diff, and commit
the updated files together with the change that caused them::

    PYTHONPATH=src python tools/regen_golden.py [case ...]

With no arguments every case is rebuilt; otherwise only the named ones
(see ``tests.golden_cases.CASES``).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))
sys.path.insert(0, str(REPO / "src"))

from tests.golden_cases import CASES, GOLDEN_DIR, golden_path, serialize  # noqa: E402


def main(argv: list[str]) -> int:
    names = argv or sorted(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        print(f"unknown case(s) {unknown}; choose from {sorted(CASES)}")
        return 2
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in names:
        payload = CASES[name]()
        text = serialize(payload)
        path = golden_path(name)
        changed = not path.exists() or path.read_text() != text
        path.write_text(text)
        print(f"{'wrote' if changed else 'unchanged'} {path} "
              f"({len(payload['results'])} results, {len(payload['trace'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
