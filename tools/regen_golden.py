#!/usr/bin/env python
"""Regenerate the golden-trace corpus under tests/golden/.

Run after an *intentional* behavior change, review the diff, and commit
the updated files together with the change that caused them::

    PYTHONPATH=src python tools/regen_golden.py [case ...]

With no arguments every case is rebuilt; otherwise only the named ones
(see ``tests.golden_cases.CASES``).

Every regenerated payload is audited against the metrics accounting
identities (:class:`repro.obs.audit.InvariantAuditor`) before anything
is written: a case whose counters are mutually inconsistent would pin a
broken baseline, so the run exits non-zero and leaves the corpus
untouched instead.  Writes are atomic (temp file + rename), so an
interrupted regeneration can never leave a truncated golden file.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))
sys.path.insert(0, str(REPO / "src"))

from repro.io import _atomic_write_text  # noqa: E402
from repro.obs.audit import InvariantAuditor  # noqa: E402
from tests.golden_cases import CASES, GOLDEN_DIR, golden_path, serialize  # noqa: E402


def _audit(name: str, payload: dict) -> list[str]:
    """Accounting violations in a case payload (merged + per-worker)."""
    violations: list[str] = []
    snapshots = [("merged", payload.get("metrics"))]
    snapshots += [
        (f"worker{i}", snap)
        for i, snap in enumerate(payload.get("worker_metrics", []))
    ]
    for label, snapshot in snapshots:
        if snapshot is None:
            continue
        for v in InvariantAuditor(snapshot).violations():
            violations.append(f"{name}/{label}: {v}")
    return violations


def main(argv: list[str]) -> int:
    names = argv or sorted(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        print(f"unknown case(s) {unknown}; choose from {sorted(CASES)}")
        return 2
    # Build and audit everything first; write nothing on any failure.
    built: list[tuple[str, dict, str]] = []
    violations: list[str] = []
    for name in names:
        payload = CASES[name]()
        violations += _audit(name, payload)
        built.append((name, payload, serialize(payload)))
    if violations:
        print("refusing to write: regenerated payloads violate accounting "
              "invariants:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, payload, text in built:
        path = golden_path(name)
        changed = not path.exists() or path.read_text() != text
        _atomic_write_text(path, text)
        print(f"{'wrote' if changed else 'unchanged'} {path} "
              f"({len(payload['results'])} results, {len(payload['trace'])} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
