#!/usr/bin/env python
"""Line-coverage measurement without coverage.py (sys.settrace based).

The CI coverage job uses ``pytest-cov``; this tool exists so the
``--cov-fail-under`` floor it enforces can be (re)measured in
environments where that plugin is not installed::

    python tools/measure_coverage.py [pytest args...]

It traces every line executed in ``src/repro`` while running the test
suite (default args: ``-q -m "not chaos"``), then reports per-module and
total line coverage.  Executable lines are taken from the compiled code
objects (``co_lines``), the same ground truth the tracer can ever
observe, so the percentage is self-consistent; coverage.py's number may
differ by a point or two, which is why the CI floor is pinned below the
measured value.

A frame whose code object is already fully covered opts out of line
tracing, so the run converges to near-normal speed after warmup.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src" / "repro")
sys.path.insert(0, str(REPO / "src"))

_seen: dict[str, set[int]] = {}          # filename -> executed lines
_full: set = set()                       # code objects known fully covered
_lines: dict = {}                        # code object -> its line numbers


def _code_lines(code) -> set[int]:
    lines = _lines.get(code)
    if lines is None:
        lines = {line for _, _, line in code.co_lines() if line is not None}
        _lines[code] = lines
    return lines


def _tracer(frame, event, arg):
    code = frame.f_code
    if not code.co_filename.startswith(SRC):
        return None
    if code in _full:
        return None
    if event == "line":
        _seen.setdefault(code.co_filename, set()).add(frame.f_lineno)
        if _code_lines(code) <= _seen[code.co_filename]:
            _full.add(code)
            return None
    return _tracer


def _executable_lines(path: Path) -> set[int]:
    """All traceable lines of a module: co_lines of every code object."""
    out: set[int] = set()
    todo = [compile(path.read_text(), str(path), "exec")]
    while todo:
        code = todo.pop()
        out |= _code_lines(code)
        todo.extend(c for c in code.co_consts if hasattr(c, "co_lines"))
    # Module-level def/class lines execute at import; drop line 0 artifacts.
    out.discard(0)
    return out


def main(argv: list[str]) -> int:
    import pytest

    args = argv or ["-q", "-m", "not chaos"]
    sys.settrace(_tracer)
    # threading tracing too, in case tests spawn workers.
    import threading

    threading.settrace(_tracer)
    exit_code = pytest.main(args)
    sys.settrace(None)
    if exit_code not in (0, pytest.ExitCode.OK):
        print(f"pytest exited {exit_code}; coverage numbers below are partial")

    total_exec = total_hit = 0
    rows = []
    for path in sorted(Path(SRC).rglob("*.py")):
        executable = _executable_lines(path)
        hit = _seen.get(str(path), set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        rows.append((str(path.relative_to(REPO / "src")), len(hit), len(executable), pct))

    width = max(len(r[0]) for r in rows)
    for name, hit, executable, pct in rows:
        print(f"{name:<{width}}  {hit:>5}/{executable:<5}  {pct:6.1f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_exec:<5}  {pct:6.1f}%")
    return int(exit_code)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
