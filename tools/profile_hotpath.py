#!/usr/bin/env python
"""Profile the hot-path end-to-end workload: cProfile + obs-span breakdown.

Runs the same time-budgeted exploration as
``benchmarks/bench_hotpath_kernels.py`` (kernel path, 200x200 query
grid) and reports where the wall time goes, from two angles::

    python tools/profile_hotpath.py [--top N] [--sort tottime|cumtime]
                                    [--repeat K] [--naive]

* **cProfile top-N** — functions ranked by self time (``tottime``, the
  default) or cumulative time; the Python-level view of the inner loop.
* **obs spans** — the engine's own phase accounting (``span.*`` counters
  from ``repro.obs``): *simulated* seconds charged to seed / read /
  expand / estimate / ..., i.e. where the modelled exploration spends
  its budget, independent of host speed.

The two views intentionally disagree on units (host wall seconds versus
simulated seconds); optimizing the first must never move the second —
that is the kernel layer's exactness contract.

``--repeat`` runs the workload K times inside one profile (default 3)
so per-call overhead dominates over interpreter warm-up; the reported
wall time is the minimum of the K runs, measured outside cProfile to
stay honest about instrumentation overhead.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))
sys.path.insert(0, str(_REPO))

import numpy.ma  # noqa: F401  (preload: keep the lazy import out of profiles)

from repro.bench import fresh_database, get_table
from repro.core import SearchConfig, SWEngine
from repro.workloads.synthetic import synthetic_dataset

from benchmarks.bench_hotpath_kernels import _seed_heavy_query


def _build_workload(use_kernels: bool, metrics: bool):
    dataset = synthetic_dataset("high", scale=0.5)
    extent = dataset.grid.area[0].hi - dataset.grid.area[0].lo
    query = _seed_heavy_query(dataset, steps=(extent / 200, extent / 200))
    table = get_table(dataset, "axis", axis_dim=0)

    def run():
        # Setup (database + offline sample) stays outside the caller's
        # timing/profiling window, matching the benchmark's protocol.
        database = fresh_database(table, metrics=metrics)
        engine = SWEngine(
            database, dataset.name, sample_fraction=0.05, use_kernels=use_kernels
        )
        engine.sample_for(query)

        def execute():
            return engine.execute(query, SearchConfig(time_limit_s=0.3))

        return execute, database

    return run


def _span_rows(counters: dict) -> list[list[str]]:
    names = sorted(
        {n.split(".")[1] for n in counters if n.startswith("span.") and n.endswith(".self_s")}
    )
    rows = []
    for name in names:
        count = counters.get(f"span.{name}.count", 0.0)
        total = counters.get(f"span.{name}.total_s", 0.0)
        self_s = counters.get(f"span.{name}.self_s", 0.0)
        rows.append([name, f"{int(count)}", f"{total:.4f}", f"{self_s:.4f}"])
    rows.sort(key=lambda r: -float(r[3]))
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--top", type=int, default=25, help="functions to print (default 25)")
    parser.add_argument(
        "--sort",
        choices=("tottime", "cumtime"),
        default="tottime",
        help="cProfile ranking: self time (default) or cumulative",
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="workload runs inside one profile (default 3)"
    )
    parser.add_argument(
        "--naive",
        action="store_true",
        help="profile the scalar oracle path instead of the kernel path",
    )
    args = parser.parse_args(argv)
    use_kernels = not args.naive

    # Wall time first, un-instrumented: cProfile roughly doubles the cost
    # of tight Python loops, so the honest number comes from outside it.
    build = _build_workload(use_kernels, metrics=False)
    build()[0]()  # warm-up: first-touch imports and caches
    wall = float("inf")
    report = None
    for _ in range(args.repeat):
        execute, _db = build()
        t0 = time.perf_counter()
        report = execute()
        wall = min(wall, time.perf_counter() - t0)

    profile = cProfile.Profile()
    for _ in range(args.repeat):
        execute, _db = build()
        profile.enable()
        execute()
        profile.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)

    # Span breakdown needs a metrics registry attached; do one extra run.
    execute, database = _build_workload(use_kernels, metrics=True)()
    report = execute()
    counters = database.metrics.snapshot()["counters"]

    path = "kernel" if use_kernels else "naive"
    print(f"== hot path profile ({path}, {args.repeat} runs) ==")
    print(f"best wall time: {wall:.4f}s   results: {len(report.run.results)}")
    print()
    print(f"== cProfile top {args.top} by {args.sort} ==")
    print(stream.getvalue())
    print("== obs spans (simulated seconds, by self_s) ==")
    print(f"{'phase':<12} {'count':>8} {'total_s':>10} {'self_s':>10}")
    for name, count, total, self_s in _span_rows(counters):
        print(f"{name:<12} {count:>8} {total:>10} {self_s:>10}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
